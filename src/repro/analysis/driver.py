"""questlint driver: walk files, run checkers, filter, report.

The pipeline is deliberately boring: collect ``.py`` files, parse each
once, hand every module to every checker, then run whole-program
``finalize`` passes, then filter through inline suppressions and the
baseline. Exit code 1 iff any active (unsuppressed, non-baselined)
finding survives — that is the CI contract.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence, TextIO

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.checkers import Checker, ModuleInfo, all_checkers
from repro.analysis.findings import Finding
from repro.analysis.report import render_json, render_text
from repro.analysis.suppress import parse_suppressions

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".venv", "node_modules"}


@dataclass
class AnalysisResult:
    """Everything one questlint run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules: dict[str, str] = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def collect_files(paths: Sequence[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if any(
                    part in _SKIP_DIR_NAMES or part.startswith(".")
                    for part in candidate.parts
                ):
                    continue
                files.append(candidate)
    unique: dict[Path, None] = {}
    for file in files:
        unique.setdefault(file.resolve(), None)
    return sorted(unique)


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _module_name(rel_path: str) -> str:
    parts = Path(rel_path).with_suffix("").parts
    # Strip a leading source-root segment so lock-role ids read as
    # import paths ("repro.cache"), matching how developers name them.
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<module>"


def load_module(path: Path, root: Path) -> ModuleInfo | Finding:
    rel = _rel_path(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding.make(
            "syntax", rel, exc.lineno or 0, exc.offset or 0,
            f"file does not parse: {exc.msg}",
        )
    return ModuleInfo(
        path=path,
        rel_path=rel,
        module_name=_module_name(rel),
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )


def analyze_paths(
    paths: Sequence[Path],
    checkers: Sequence[Checker] | None = None,
    baseline: Baseline | None = None,
    root: Path | None = None,
) -> AnalysisResult:
    active_checkers = list(checkers) if checkers is not None else all_checkers()
    active_baseline = baseline if baseline is not None else Baseline()
    anchor = root if root is not None else Path.cwd()
    result = AnalysisResult(
        rules={c.rule: c.description for c in active_checkers}
    )

    modules: list[ModuleInfo] = []
    raw: list[tuple[Finding, ModuleInfo | None]] = []
    for path in collect_files(paths):
        loaded = load_module(path, anchor)
        if isinstance(loaded, Finding):
            raw.append((loaded, None))
            continue
        modules.append(loaded)
    result.files_checked = len(modules)

    for checker in active_checkers:
        for module in modules:
            for finding in checker.check_module(module):
                raw.append((finding, module))
    by_rel: dict[str, ModuleInfo] = {m.rel_path: m for m in modules}
    for checker in active_checkers:
        for finding in checker.finalize():
            raw.append((finding, by_rel.get(finding.path)))

    for finding, module in sorted(
        raw, key=lambda pair: (pair[0].path, pair[0].line, pair[0].rule)
    ):
        if module is not None and module.suppressions.is_suppressed(
            finding.rule, finding.line
        ):
            result.suppressed.append(finding)
        elif finding.fingerprint in active_baseline:
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    return result


def main(argv: Sequence[str] | None = None, out: TextIO | None = None) -> int:
    stream = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="questlint: project-specific invariant analysis",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE_NAME, metavar="FILE",
        help="baseline file of accepted findings (default: %(default)s; "
        "missing file means an empty baseline)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument(
        "--rules", metavar="R1,R2",
        help="run only these rules (comma-separated)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list available rules and exit",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    checkers = all_checkers()
    if args.list_rules:
        for checker in checkers:
            stream.write(f"{checker.rule}: {checker.description}\n")
        return 0
    if args.rules:
        wanted = {part.strip() for part in args.rules.split(",") if part.strip()}
        unknown = wanted - {c.rule for c in checkers}
        if unknown:
            stream.write(f"unknown rules: {', '.join(sorted(unknown))}\n")
            return 2
        checkers = [c for c in checkers if c.rule in wanted]

    baseline_path = Path(args.baseline)
    baseline = Baseline.load(baseline_path)
    result = analyze_paths(
        [Path(p) for p in args.paths], checkers=checkers, baseline=baseline
    )

    if args.write_baseline:
        merged = Baseline.from_findings(result.findings)
        merged.entries.update(baseline.entries)
        merged.save(baseline_path)
        stream.write(
            f"wrote {len(result.findings)} new entr"
            f"{'y' if len(result.findings) == 1 else 'ies'} to "
            f"{baseline_path} (justify each before committing)\n"
        )
        return 0

    if args.json:
        stream.write(render_json(result))
    else:
        stream.write(render_text(result))
    return result.exit_code
