"""Rendering logical queries to SQL text.

QUEST's final output is SQL ("SELECT XY FROM Z WHERE ..." in the paper's
Figure 1); this module turns :class:`~repro.db.query.SelectQuery` objects
into deterministic, readable SQL text. The renderer also emits
``CREATE TABLE`` DDL for schemas, used by examples and documentation.

Two dialects are supported:

- ``"standard"`` — portable SQL-92 for display and documentation.
  CONTAINS predicates are down-translated to case-insensitive ``LIKE``
  patterns, matching how QUEST's wrapper would rewrite full-text
  conditions for sources without a search function.
- ``"sqlite"`` — SQL executed verbatim by the SQLite storage backend.
  CONTAINS/LIKE render as calls to the ``QUEST_CONTAINS``/``QUEST_LIKE``
  user functions the backend registers on its connection (the exact
  Python predicates of :mod:`repro.db.executor`, so predicate semantics
  are identical across backends by construction); DATE literals render as
  ISO strings and BOOLEAN literals as ``1``/``0``, matching the backend's
  storage encoding. BOOLEAN columns under CONTAINS/LIKE are unwrapped to
  their ``True``/``False`` text rendering via CASE, which is why the
  sqlite dialect accepts an optional schema.
"""

from __future__ import annotations

from datetime import date
from typing import Any

from repro.db.query import Comparison, SelectQuery
from repro.db.schema import Schema, TableSchema
from repro.db.types import DataType, SQL_TYPE_NAMES

__all__ = [
    "quote_identifier",
    "render_sql",
    "render_literal",
    "render_create_table",
    "render_ddl",
]


def render_literal(value: Any, dialect: str = "standard") -> str:
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        if dialect == "sqlite":
            return "1" if value else "0"
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, date):
        if dialect == "sqlite":
            return f"'{value.isoformat()}'"
        return f"DATE '{value.isoformat()}'"
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def quote_identifier(identifier: str) -> str:
    """Double-quote an identifier so reserved words stay usable as names."""
    return '"' + identifier.replace('"', '""') + '"'


def _target(alias: str, column: str, dialect: str) -> str:
    """Render ``alias.column``; the sqlite dialect quotes both parts."""
    if dialect == "sqlite":
        return f"{quote_identifier(alias)}.{quote_identifier(column)}"
    return f"{alias}.{column}"


def _text_expr(query: SelectQuery, alias: str, column: str, schema: Schema | None) -> str:
    """The expression a text predicate evaluates over, for the sqlite dialect.

    Booleans are stored as integers in SQLite, but the in-memory executor
    text-matches their Python rendering (``True``/``False``); the CASE
    keeps both backends matching the same strings. NULL stays NULL.
    """
    target = _target(alias, column, "sqlite")
    if schema is None:
        return target
    table = query.table_of(alias)
    dtype = schema.table(table).column(column).dtype
    if dtype is DataType.BOOLEAN:
        return f"(CASE {target} WHEN 1 THEN 'True' WHEN 0 THEN 'False' END)"
    return target


def render_sql(
    query: SelectQuery, dialect: str = "standard", schema: Schema | None = None
) -> str:
    """Render a :class:`SelectQuery` as a single-line SQL statement.

    In the standard dialect, CONTAINS predicates are rendered as
    case-insensitive ``LIKE`` patterns so the output is executable on a
    vanilla SQL engine; the sqlite dialect keeps their exact executor
    semantics through registered user functions (see module docstring).
    """
    select_list = (
        ", ".join(
            _target(alias, column, dialect) for alias, column in query.projection
        )
        if query.projection
        else "*"
    )
    distinct = "DISTINCT " if query.distinct and query.projection else ""
    sql = [f"SELECT {distinct}{select_list}"]
    if dialect == "sqlite":
        sql.append(
            "FROM "
            + ", ".join(
                quote_identifier(ref.table)
                + (
                    f" AS {quote_identifier(ref.alias)}"
                    if ref.alias != ref.table
                    else ""
                )
                for ref in query.tables
            )
        )
        conditions = [
            f"{_target(join.left_alias, join.left_column, dialect)} = "
            f"{_target(join.right_alias, join.right_column, dialect)}"
            for join in query.joins
        ]
    else:
        sql.append("FROM " + ", ".join(str(ref) for ref in query.tables))
        conditions = [str(join) for join in query.joins]
    for predicate in query.predicates:
        target = _target(predicate.alias, predicate.column, dialect)
        if predicate.op is Comparison.CONTAINS:
            if dialect == "sqlite":
                expr = _text_expr(query, predicate.alias, predicate.column, schema)
                literal = render_literal(str(predicate.value), dialect)
                conditions.append(f"QUEST_CONTAINS({expr}, {literal})")
            else:
                pattern = f"%{predicate.value}%"
                conditions.append(
                    f"LOWER({target}) LIKE {render_literal(pattern.lower())}"
                )
        elif predicate.op is Comparison.LIKE:
            if dialect == "sqlite":
                expr = _text_expr(query, predicate.alias, predicate.column, schema)
                literal = render_literal(str(predicate.value), dialect)
                conditions.append(f"QUEST_LIKE({expr}, {literal})")
            else:
                conditions.append(
                    f"{target} LIKE {render_literal(predicate.value)}"
                )
        else:
            conditions.append(
                f"{target} {predicate.op.value} "
                f"{render_literal(predicate.value, dialect)}"
            )
    if conditions:
        sql.append("WHERE " + " AND ".join(conditions))
    if query.limit is not None:
        sql.append(f"LIMIT {query.limit}")
    return " ".join(sql)


def render_create_table(table: TableSchema) -> str:
    """Render ``CREATE TABLE`` DDL for one table."""
    lines = []
    for column in table.columns:
        null = "" if column.nullable else " NOT NULL"
        lines.append(f"  {column.name} {SQL_TYPE_NAMES[column.dtype]}{null}")
    lines.append(f"  PRIMARY KEY ({', '.join(table.primary_key)})")
    body = ",\n".join(lines)
    return f"CREATE TABLE {table.name} (\n{body}\n);"


def render_ddl(schema: Schema) -> str:
    """Render the full schema as DDL: tables then FK constraints."""
    statements = [render_create_table(table) for table in schema.tables]
    for fk in schema.foreign_keys:
        statements.append(
            f"ALTER TABLE {fk.table} ADD FOREIGN KEY ({fk.column}) "
            f"REFERENCES {fk.ref_table} ({fk.ref_column});"
        )
    return "\n\n".join(statements)
