"""Rendering logical queries to SQL text.

QUEST's final output is SQL ("SELECT XY FROM Z WHERE ..." in the paper's
Figure 1); this module turns :class:`~repro.db.query.SelectQuery` objects
into deterministic, readable SQL-92 text. The renderer also emits
``CREATE TABLE`` DDL for schemas, used by examples and documentation.
"""

from __future__ import annotations

from datetime import date
from typing import Any

from repro.db.query import Comparison, SelectQuery
from repro.db.schema import Schema, TableSchema
from repro.db.types import SQL_TYPE_NAMES

__all__ = ["render_sql", "render_literal", "render_create_table", "render_ddl"]


def render_literal(value: Any) -> str:
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, date):
        return f"DATE '{value.isoformat()}'"
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def render_sql(query: SelectQuery) -> str:
    """Render a :class:`SelectQuery` as a single-line SQL statement.

    CONTAINS predicates are rendered as case-insensitive ``LIKE`` patterns so
    the output is executable on a vanilla SQL engine, matching how QUEST's
    wrapper would down-translate full-text conditions for sources without a
    full-text search function.
    """
    select_list = (
        ", ".join(f"{alias}.{column}" for alias, column in query.projection)
        if query.projection
        else "*"
    )
    distinct = "DISTINCT " if query.distinct and query.projection else ""
    sql = [f"SELECT {distinct}{select_list}"]
    sql.append("FROM " + ", ".join(str(ref) for ref in query.tables))
    conditions = [str(join) for join in query.joins]
    for predicate in query.predicates:
        target = f"{predicate.alias}.{predicate.column}"
        if predicate.op is Comparison.CONTAINS:
            pattern = f"%{predicate.value}%"
            conditions.append(f"LOWER({target}) LIKE {render_literal(pattern.lower())}")
        elif predicate.op is Comparison.LIKE:
            conditions.append(f"{target} LIKE {render_literal(predicate.value)}")
        else:
            conditions.append(
                f"{target} {predicate.op.value} {render_literal(predicate.value)}"
            )
    if conditions:
        sql.append("WHERE " + " AND ".join(conditions))
    if query.limit is not None:
        sql.append(f"LIMIT {query.limit}")
    return " ".join(sql)


def render_create_table(table: TableSchema) -> str:
    """Render ``CREATE TABLE`` DDL for one table."""
    lines = []
    for column in table.columns:
        null = "" if column.nullable else " NOT NULL"
        lines.append(f"  {column.name} {SQL_TYPE_NAMES[column.dtype]}{null}")
    lines.append(f"  PRIMARY KEY ({', '.join(table.primary_key)})")
    body = ",\n".join(lines)
    return f"CREATE TABLE {table.name} (\n{body}\n);"


def render_ddl(schema: Schema) -> str:
    """Render the full schema as DDL: tables then FK constraints."""
    statements = [render_create_table(table) for table in schema.tables]
    for fk in schema.foreign_keys:
        statements.append(
            f"ALTER TABLE {fk.table} ADD FOREIGN KEY ({fk.column}) "
            f"REFERENCES {fk.ref_table} ({fk.ref_column});"
        )
    return "\n\n".join(statements)
