"""Instance statistics: per-attribute profiles and join mutual information.

The backward step weighs schema-graph edges with a *mutual-information-based
distance* (the paper points to Yang, Procopiuc and Srivastava's summary
graphs, PVLDB 4(11)). For a foreign-key join between tables ``R`` and ``S``
we follow that construction: let the join result be ``J``; draw a pair
``(r, s)`` uniformly from ``J`` and call ``X`` the ``R``-tuple and ``Y`` the
``S``-tuple. Then

* ``I(X; Y)`` — how much knowing the ``R`` side tells about the ``S`` side —
  is high for crisp one-to-few joins and low for diffuse many-to-many joins;
* the **normalised information distance** ``d = 1 - I(X;Y) / H(X,Y)``
  (``d = 1`` for empty joins) turns that into an edge weight: informative
  joins become short edges, so Steiner trees prefer join paths likely to
  produce actual tuples.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.db.schema import ColumnRef, ForeignKey

__all__ = [
    "ColumnProfile",
    "InstanceSource",
    "profile_column",
    "entropy",
    "JoinStatistics",
    "join_statistics",
]


@runtime_checkable
class InstanceSource(Protocol):
    """The minimal instance surface statistics are computed from.

    Both :class:`~repro.db.database.Database` and every storage backend
    (:mod:`repro.storage`) satisfy it, so profiles and join statistics —
    and therefore schema-graph weights — are identical however the
    relations are stored.
    """

    def column_values(self, ref: ColumnRef) -> list[object]:
        """All values of the referenced column, in row order."""
        ...

    def row_count(self, table: str) -> int:
        """Number of tuples stored in *table*."""
        ...


def entropy(counts: list[int] | tuple[int, ...]) -> float:
    """Shannon entropy (nats) of a histogram of non-negative counts."""
    total = sum(counts)
    if total <= 0:
        return 0.0
    result = 0.0
    for count in counts:
        if count > 0:
            p = count / total
            result -= p * math.log(p)
    return result


@dataclass(frozen=True)
class ColumnProfile:
    """Summary statistics of one attribute extension."""

    ref: ColumnRef
    row_count: int
    null_count: int
    distinct_count: int
    entropy: float
    sample: tuple[object, ...]

    @property
    def null_fraction(self) -> float:
        """Fraction of NULL values (0 for empty columns)."""
        if self.row_count == 0:
            return 0.0
        return self.null_count / self.row_count

    @property
    def is_key_like(self) -> bool:
        """Whether the column looks unique (one distinct value per row)."""
        non_null = self.row_count - self.null_count
        return non_null > 0 and self.distinct_count == non_null


def profile_column(
    db: InstanceSource, ref: ColumnRef, sample_size: int = 8
) -> ColumnProfile:
    """Compute a :class:`ColumnProfile` for one attribute."""
    values = db.column_values(ref)
    non_null = [v for v in values if v is not None]
    counts = Counter(non_null)
    sample = tuple(sorted(counts, key=lambda v: (-counts[v], str(v)))[:sample_size])
    return ColumnProfile(
        ref=ref,
        row_count=len(values),
        null_count=len(values) - len(non_null),
        distinct_count=len(counts),
        entropy=entropy(list(counts.values())),
        sample=sample,
    )


@dataclass(frozen=True)
class JoinStatistics:
    """Information-theoretic profile of one foreign-key join."""

    foreign_key: ForeignKey
    join_size: int
    mutual_information: float
    joint_entropy: float

    @property
    def distance(self) -> float:
        """Normalised information distance in ``[0, 1]``.

        ``0`` means one side fully determines the other (maximally
        informative join); ``1`` means the join is empty or carries no
        information.
        """
        if self.join_size == 0:
            return 1.0
        if self.joint_entropy <= 0.0:
            return 0.0  # a single join pair: one side fully determines the other
        ratio = self.mutual_information / self.joint_entropy
        return min(1.0, max(0.0, 1.0 - ratio))


def join_statistics(db: InstanceSource, fk: ForeignKey) -> JoinStatistics:
    """Compute :class:`JoinStatistics` for one foreign key.

    Degrees are obtained without materialising the join: each source row
    with foreign-key value ``v`` pairs with every target row keyed ``v``,
    so per-tuple join degrees follow from the two value histograms. Only
    column extensions are read, so any :class:`InstanceSource` serves.
    """
    source_hist = Counter(
        value
        for value in db.column_values(ColumnRef(fk.table, fk.column))
        if value is not None
    )
    target_hist = Counter(
        value
        for value in db.column_values(ColumnRef(fk.ref_table, fk.ref_column))
        if value is not None
    )

    join_size = 0
    # Σ over join pairs of log(deg): accumulated per matching value v, where
    # every source tuple with value v has degree target_hist[v] and vice versa.
    sum_log_deg_source = 0.0
    sum_log_deg_target = 0.0
    for value, source_count in source_hist.items():
        target_count = target_hist.get(value, 0)
        if target_count == 0:
            continue
        pairs = source_count * target_count
        join_size += pairs
        # Each R-tuple with this value has degree target_count (it joins
        # with target_count S-tuples); there are `pairs` join pairs whose
        # R-side has that degree.
        sum_log_deg_source += pairs * math.log(target_count)
        sum_log_deg_target += pairs * math.log(source_count)

    if join_size == 0:
        return JoinStatistics(fk, 0, 0.0, 0.0)

    log_join = math.log(join_size)
    # I(X;Y) = log|J| - E[log deg(r)] - E[log deg(s)]
    mutual_information = (
        log_join
        - sum_log_deg_source / join_size
        - sum_log_deg_target / join_size
    )
    # H(X,Y) = log|J| because (r, s) is uniform over J.
    joint_entropy = log_join
    if joint_entropy == 0.0:
        # A single join pair: fully determined, maximally informative.
        return JoinStatistics(fk, join_size, 0.0, 0.0)
    mutual_information = max(0.0, min(mutual_information, joint_entropy))
    return JoinStatistics(fk, join_size, mutual_information, joint_entropy)
