"""Inverted full-text index over attribute extensions.

QUEST assumes the DBMS exposes a search function that, given a keyword,
ranks attribute values by importance; emission probabilities of the forward
HMM are obtained by normalising its scores per attribute. This module is our
stand-in for that black box: a per-attribute inverted index with TF-IDF
scoring, where each (table, column) pair is treated as a retrieval field.

Only TEXT columns are tokenised; numeric, boolean and date columns are
indexed by their literal rendering so keywords like ``1994`` still hit a
``year`` column.

The index stays correct under row inserts: tables are append-only, so
:meth:`FullTextIndex.refresh` indexes only the rows added since the last
build, and every read path checks the database's mutation counter first
(lazy refresh — the same invalidation contract the Steiner cache honours
on ``SchemaGraph.add_edge``).
"""

from __future__ import annotations

import math
import re
import threading
from collections import Counter, defaultdict
from contextlib import contextmanager

from repro.db.database import Database
from repro.db.schema import ColumnRef

__all__ = ["FullTextIndex", "tokenize_value"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize_value(value: object) -> list[str]:
    """Lower-case alphanumeric tokens of a stored value."""
    if value is None:
        return []
    return _TOKEN_RE.findall(str(value).casefold())


class FullTextIndex:
    """Inverted index mapping terms to per-attribute posting lists."""

    def __init__(self, db: Database) -> None:
        self._db = db
        #: term -> {ColumnRef -> {row_position -> term frequency}}
        self._postings: dict[str, dict[ColumnRef, dict[int, int]]] = defaultdict(dict)
        #: ColumnRef -> number of indexed (non-null) values
        self._field_sizes: dict[ColumnRef, int] = {}
        #: ColumnRef -> total token count
        self._field_tokens: dict[ColumnRef, int] = {}
        #: table name -> number of rows already indexed
        self._indexed_rows: dict[str, int] = {}
        for table in db.tables:
            for column in table.schema.columns:
                ref = ColumnRef(table.name, column.name)
                self._field_sizes[ref] = 0
                self._field_tokens[ref] = 0
            self._indexed_rows[table.name] = 0
        self._n_fields = len(self._field_sizes)
        # Built lazily: the first read triggers the initial refresh, so
        # constructing an index (e.g. for an execute-only endpoint that
        # never searches) costs nothing.
        self._built_version = -1
        self._lock = threading.RLock()

    def refresh(self) -> None:
        """Index rows inserted since the last build.

        Tables are append-only (the substrate supports no delete/update),
        so refreshing reduces to scanning each table's tail — O(new rows),
        not O(all rows). Safe to call at any time and from any thread
        (wrappers are shared across threaded engines): the build is
        serialised, and a second caller finds no unindexed tail left.
        """
        with self._lock:
            self._refresh_locked()

    def _refresh_locked(self) -> None:
        # Snapshot the version (and each table's length) BEFORE scanning:
        # a row inserted concurrently mid-scan then leaves the snapshot
        # behind the live version, so the next read refreshes again
        # instead of silently treating the unscanned row as indexed.
        version = self._db.version
        for table in self._db.tables:
            start = self._indexed_rows[table.name]
            rows = table.rows
            end = len(rows)
            if start >= end:
                continue
            for column in table.schema.columns:
                ref = ColumnRef(table.name, column.name)
                position = table.column_position(column.name)
                indexed = 0
                tokens_total = 0
                for row_position in range(start, end):
                    tokens = tokenize_value(rows[row_position][position])
                    if not tokens:
                        continue
                    indexed += 1
                    tokens_total += len(tokens)
                    for term, frequency in Counter(tokens).items():
                        field_postings = self._postings[term].setdefault(ref, {})
                        field_postings[row_position] = frequency
                self._field_sizes[ref] += indexed
                self._field_tokens[ref] += tokens_total
            self._indexed_rows[table.name] = end
        self._built_version = version

    @contextmanager
    def _reading(self):
        """Serialise reads against refreshes (and refresh lazily first).

        Read paths iterate the posting dicts a concurrent refresh would
        mutate, so the whole read holds the same lock. Covers both the
        lazy initial build (_built_version starts at -1, below any real
        version) and later inserts.
        """
        with self._lock:
            if self._built_version != self._db.version:
                self._refresh_locked()
            yield

    # -- vocabulary --------------------------------------------------------

    def __contains__(self, term: str) -> bool:
        with self._reading():
            return term.casefold() in self._postings

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct indexed terms."""
        with self._reading():
            return len(self._postings)

    def fields(self) -> tuple[ColumnRef, ...]:
        """Every indexed attribute."""
        return tuple(self._field_sizes)

    # -- scoring -----------------------------------------------------------

    def _idf(self, by_field: dict[ColumnRef, dict[int, int]]) -> float:
        """Inverse document frequency of a term given its posting map."""
        return math.log(1.0 + self._n_fields / len(by_field))

    def attribute_scores(self, keyword: str) -> dict[ColumnRef, float]:
        """TF-IDF relevance of *keyword* for each attribute containing it.

        The score for attribute *a* is ``tf_a * idf`` where ``tf_a`` is the
        fraction of *a*'s indexed values containing the keyword and ``idf``
        dampens terms spread across many attributes. Scores are positive and
        unnormalised; the HMM emission builder normalises them per state.
        """
        with self._reading():
            term = keyword.casefold()
            by_field = self._postings.get(term)
            if not by_field:
                return {}
            idf = self._idf(by_field)
            scores: dict[ColumnRef, float] = {}
            for ref, rows in by_field.items():
                field_size = self._field_sizes.get(ref, 0)
                if field_size == 0:
                    continue
                tf = len(rows) / field_size
                scores[ref] = tf * idf
            return scores

    def score(self, keyword: str, ref: ColumnRef) -> float:
        """Relevance of *keyword* for one attribute (0.0 when absent).

        A direct posting-map lookup — O(1) in the number of attributes the
        term occurs in, unlike :meth:`attribute_scores` which materialises
        the full per-attribute dict.
        """
        with self._reading():
            by_field = self._postings.get(keyword.casefold())
            if not by_field:
                return 0.0
            rows = by_field.get(ref)
            if not rows:
                return 0.0
            field_size = self._field_sizes.get(ref, 0)
            if field_size == 0:
                return 0.0
            return (len(rows) / field_size) * self._idf(by_field)

    # -- retrieval -----------------------------------------------------------

    def matching_row_positions(self, keyword: str, ref: ColumnRef) -> list[int]:
        """Row positions in ``ref.table`` whose ``ref.column`` contains *keyword*."""
        with self._reading():
            term = keyword.casefold()
            by_field = self._postings.get(term, {})
            return sorted(by_field.get(ref, {}))

    def selectivity(self, keyword: str, ref: ColumnRef) -> float:
        """Fraction of the attribute's values matching *keyword*.

        Reads the posting map directly (no sort, no full-dict rebuild):
        only the matching-row *count* is needed, not the positions.
        """
        with self._reading():
            field_size = self._field_sizes.get(ref, 0)
            if field_size == 0:
                return 0.0
            by_field = self._postings.get(keyword.casefold(), {})
            return len(by_field.get(ref, ())) / field_size

    def __repr__(self) -> str:
        return (
            f"FullTextIndex(fields={self._n_fields}, "
            f"terms={len(self._postings)})"
        )
