"""Inverted full-text index over attribute extensions.

QUEST assumes the DBMS exposes a search function that, given a keyword,
ranks attribute values by importance; emission probabilities of the forward
HMM are obtained by normalising its scores per attribute. This module is our
stand-in for that black box: a per-attribute inverted index with TF-IDF
scoring, where each (table, column) pair is treated as a retrieval field.

Only TEXT columns are tokenised; numeric, boolean and date columns are
indexed by their literal rendering so keywords like ``1994`` still hit a
``year`` column.
"""

from __future__ import annotations

import math
import re
from collections import Counter, defaultdict

from repro.db.database import Database
from repro.db.schema import ColumnRef

__all__ = ["FullTextIndex", "tokenize_value"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize_value(value: object) -> list[str]:
    """Lower-case alphanumeric tokens of a stored value."""
    if value is None:
        return []
    return _TOKEN_RE.findall(str(value).casefold())


class FullTextIndex:
    """Inverted index mapping terms to per-attribute posting lists."""

    def __init__(self, db: Database) -> None:
        self._db = db
        #: term -> {ColumnRef -> {row_position -> term frequency}}
        self._postings: dict[str, dict[ColumnRef, dict[int, int]]] = defaultdict(dict)
        #: ColumnRef -> number of indexed (non-null) values
        self._field_sizes: dict[ColumnRef, int] = {}
        #: ColumnRef -> total token count
        self._field_tokens: dict[ColumnRef, int] = {}
        self._n_fields = 0
        self._build()

    def _build(self) -> None:
        for table in self._db.tables:
            for column in table.schema.columns:
                ref = ColumnRef(table.name, column.name)
                position = table.column_position(column.name)
                indexed = 0
                tokens_total = 0
                for row_position, row in enumerate(table.rows):
                    tokens = tokenize_value(row[position])
                    if not tokens:
                        continue
                    indexed += 1
                    tokens_total += len(tokens)
                    for term, frequency in Counter(tokens).items():
                        field_postings = self._postings[term].setdefault(ref, {})
                        field_postings[row_position] = frequency
                self._field_sizes[ref] = indexed
                self._field_tokens[ref] = tokens_total
                self._n_fields += 1

    # -- vocabulary --------------------------------------------------------

    def __contains__(self, term: str) -> bool:
        return term.casefold() in self._postings

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct indexed terms."""
        return len(self._postings)

    def fields(self) -> tuple[ColumnRef, ...]:
        """Every indexed attribute."""
        return tuple(self._field_sizes)

    # -- scoring -----------------------------------------------------------

    def _idf(self, by_field: dict[ColumnRef, dict[int, int]]) -> float:
        """Inverse document frequency of a term given its posting map."""
        return math.log(1.0 + self._n_fields / len(by_field))

    def attribute_scores(self, keyword: str) -> dict[ColumnRef, float]:
        """TF-IDF relevance of *keyword* for each attribute containing it.

        The score for attribute *a* is ``tf_a * idf`` where ``tf_a`` is the
        fraction of *a*'s indexed values containing the keyword and ``idf``
        dampens terms spread across many attributes. Scores are positive and
        unnormalised; the HMM emission builder normalises them per state.
        """
        term = keyword.casefold()
        by_field = self._postings.get(term)
        if not by_field:
            return {}
        idf = self._idf(by_field)
        scores: dict[ColumnRef, float] = {}
        for ref, rows in by_field.items():
            field_size = self._field_sizes.get(ref, 0)
            if field_size == 0:
                continue
            tf = len(rows) / field_size
            scores[ref] = tf * idf
        return scores

    def score(self, keyword: str, ref: ColumnRef) -> float:
        """Relevance of *keyword* for one attribute (0.0 when absent).

        A direct posting-map lookup — O(1) in the number of attributes the
        term occurs in, unlike :meth:`attribute_scores` which materialises
        the full per-attribute dict.
        """
        by_field = self._postings.get(keyword.casefold())
        if not by_field:
            return 0.0
        rows = by_field.get(ref)
        if not rows:
            return 0.0
        field_size = self._field_sizes.get(ref, 0)
        if field_size == 0:
            return 0.0
        return (len(rows) / field_size) * self._idf(by_field)

    # -- retrieval -----------------------------------------------------------

    def matching_row_positions(self, keyword: str, ref: ColumnRef) -> list[int]:
        """Row positions in ``ref.table`` whose ``ref.column`` contains *keyword*."""
        term = keyword.casefold()
        by_field = self._postings.get(term, {})
        return sorted(by_field.get(ref, {}))

    def selectivity(self, keyword: str, ref: ColumnRef) -> float:
        """Fraction of the attribute's values matching *keyword*.

        Reads the posting map directly (no sort, no full-dict rebuild):
        only the matching-row *count* is needed, not the positions.
        """
        field_size = self._field_sizes.get(ref, 0)
        if field_size == 0:
            return 0.0
        by_field = self._postings.get(keyword.casefold(), {})
        return len(by_field.get(ref, ())) / field_size

    def __repr__(self) -> str:
        return (
            f"FullTextIndex(fields={self._n_fields}, "
            f"terms={len(self._postings)})"
        )
