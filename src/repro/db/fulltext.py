"""Inverted full-text index over attribute extensions.

QUEST assumes the DBMS exposes a search function that, given a keyword,
ranks attribute values by importance; emission probabilities of the forward
HMM are obtained by normalising its scores per attribute. This module is our
stand-in for that black box: a per-attribute inverted index with TF-IDF
scoring, where each (table, column) pair is treated as a retrieval field.

Only TEXT columns are tokenised; numeric, boolean and date columns are
indexed by their literal rendering so keywords like ``1994`` still hit a
``year`` column.

The index stays correct under row inserts *and* tombstoned deletes: the
physical row list is append-only, so :meth:`FullTextIndex.refresh`
indexes only the physical tail added since the last build and unindexes
exactly the tail of the table's deletion log, and every read path checks
the database's mutation counter first (lazy refresh — the same
invalidation contract the Steiner cache honours on
``SchemaGraph.add_edge``).

Under live mutation the sealed snapshot is not discarded per write:
refresh records the set of *touched terms* as a *delta* over the
snapshot. Reads then layer — touched terms are answered from the mutable
dicts (which always hold the full current state), untouched terms from
the snapshot arrays with the current field sizes substituted — so every
score stays bit-identical to a full rebuild while a background merge
reseals the CSR layout. A delta that outgrows ``DELTA_HARD_LIMIT`` drops
the snapshot (the next read reseals synchronously, the pre-delta
behaviour).

Two storage layouts back the read paths:

* the **dict layout** — term -> {field -> {row -> tf}} nested dicts, the
  mutable structure incremental refreshes append into. Retained verbatim
  as the reference path (``FullTextIndex(db, columnar=False)``).
* the **columnar layout** (the default) — a :class:`ColumnarPostings`
  snapshot sealed from the dicts after each refresh: an interned
  vocabulary plus CSR-style numpy arrays (per-term entry offsets, field
  ids, match counts, row positions), with per-field document-frequency
  vectors. Scoring becomes array slicing, whole queries can be scored in
  one :meth:`ColumnarPostings.emission_block` pass, and the snapshot is
  immutable — reads run lock-free on it after a single version check.

Both layouts compute scores from the same integers with the same float
operations, so they are **bit-identical** (asserted by the hypothesis
parity suite in ``tests/perf/test_index_parity.py``).

The columnar snapshot is also a **persistable artifact**: ``save(path)``
writes one ``.npz`` file (arrays + a JSON catalog header), ``load(path,
db)`` re-attaches it to a database after validating the header against the
live schema and mutation counter — a warm process skips the whole build.

Artifacts can additionally be **memory-mapped** (``load(path, db,
mmap=True)``): ``np.savez`` stores its members uncompressed, so each array
is one contiguous byte range of the archive file and can be handed back as
an ``np.memmap`` view instead of a private in-heap copy. N preforked
serving workers mapping the same artifact then share one set of physical
pages through the OS page cache — warm start for N workers at the memory
cost of one. The mapped arrays are read-only, matching the snapshot's
immutability contract, and bit-identical to a materialised load.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import re
import threading
import time
import zipfile
import zlib
from collections import Counter, defaultdict
from contextlib import contextmanager
from pathlib import Path
from typing import Sequence

import numpy as np

from repro import faults
from repro.db.database import Database
from repro.db.schema import ColumnRef
from repro.errors import IndexArtifactError
from repro.forksafe import register_lock_holder
from repro.resilience import RetryPolicy

__all__ = ["ColumnarPostings", "FullTextIndex", "tokenize_value"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def _reset_fulltext_lock(index: "FullTextIndex") -> None:
    index._lock = threading.RLock()

#: Artifact format identifier; bumped whenever the array layout or the
#: catalog header changes (v2 added per-array content checksums, the
#: mutation generation and per-table deletion counts).
_ARTIFACT_FORMAT = "quest-fulltext-v2"


def tokenize_value(value: object) -> list[str]:
    """Lower-case alphanumeric tokens of a stored value."""
    if value is None:
        return []
    return _TOKEN_RE.findall(str(value).casefold())


#: Fixed part of a ZIP local file header: signature, versions, flags,
#: method, times, CRC, sizes, then the name/extra lengths at bytes 26/28.
_ZIP_LOCAL_HEADER_SIZE = 30


def _mmap_member(
    path: Path, raw, info: zipfile.ZipInfo
) -> np.ndarray | None:
    """A read-only ``np.memmap`` view of one stored (uncompressed) member.

    ``np.load`` memory-maps only bare ``.npy`` files, but an ``.npz``
    written by ``np.savez`` stores members with ``ZIP_STORED``, so the
    member's payload is a contiguous range of the archive: seek past the
    local file header (whose name/extra lengths vary per member), parse
    the ``.npy`` header in place, and map the array data that follows.
    Returns ``None`` for members that cannot be mapped (compressed or
    object-dtype) — the caller falls back to a materialised read.
    """
    if info.compress_type != zipfile.ZIP_STORED:
        return None
    raw.seek(info.header_offset)
    local = raw.read(_ZIP_LOCAL_HEADER_SIZE)
    if len(local) != _ZIP_LOCAL_HEADER_SIZE or local[:4] != b"PK\x03\x04":
        raise IndexArtifactError(
            f"index artifact {path}: corrupt local header for {info.filename!r}"
        )
    name_len = int.from_bytes(local[26:28], "little")
    extra_len = int.from_bytes(local[28:30], "little")
    raw.seek(info.header_offset + _ZIP_LOCAL_HEADER_SIZE + name_len + extra_len)
    version = np.lib.format.read_magic(raw)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
    else:  # pragma: no cover - numpy writes 1.0/2.0 only
        return None
    if dtype.hasobject:  # pragma: no cover - we never save object arrays
        return None
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=raw.tell(),
        shape=shape,
        order="F" if fortran else "C",
    )


def _read_artifact(
    path: str | Path, mmap: bool
) -> tuple[dict, dict[str, np.ndarray]]:
    """The artifact's ``(catalog header, arrays)``; arrays are memory-mapped
    views when *mmap* is set (falling back per member where impossible)."""
    path = Path(path)
    try:
        if not mmap:
            with np.load(path, allow_pickle=False) as data:
                header = json.loads(str(data["header"]))
                arrays = {
                    name: data[name] for name in data.files if name != "header"
                }
            return header, arrays
        arrays = {}
        header = None
        with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
            for info in archive.infolist():
                name = info.filename
                if name.endswith(".npy"):
                    name = name[: -len(".npy")]
                if name == "header":
                    # The tiny JSON header is read, never mapped.
                    with archive.open(info) as member:
                        header = json.loads(
                            str(np.lib.format.read_array(member, allow_pickle=False))
                        )
                    continue
                mapped = _mmap_member(path, raw, info)
                if mapped is None:  # pragma: no cover - savez never compresses
                    with archive.open(info) as member:
                        mapped = np.lib.format.read_array(
                            member, allow_pickle=False
                        )
                arrays[name] = mapped
        if header is None:
            raise KeyError("header")
        return header, arrays
    except (
        OSError,
        KeyError,
        ValueError,
        zipfile.BadZipFile,  # truncated/corrupt archive (a cache casualty)
        zlib.error,  # truncated member payload
    ) as exc:
        raise IndexArtifactError(
            f"unreadable index artifact {path}: {exc}"
        ) from exc


def _field_mismatch(artifact_fields: list[str], live_fields: list[str]) -> str:
    """Which field(s) differ between an artifact header and the live schema.

    A stale-artifact refusal that names the exact offending attribute(s)
    turns "covers a different field set" from a shrug into a diagnosis
    (a migrated column, a renamed table, a reordered schema).
    """
    artifact_set, live_set = set(artifact_fields), set(live_fields)
    missing = sorted(live_set - artifact_set)
    extra = sorted(artifact_set - live_set)
    parts: list[str] = []
    if missing:
        parts.append(f"missing from artifact: {', '.join(missing)}")
    if extra:
        parts.append(f"unknown to schema: {', '.join(extra)}")
    if not parts:
        # Same set, different order: name the first disagreeing slot.
        for position, (got, expected) in enumerate(
            zip(artifact_fields, live_fields)
        ):
            if got != expected:
                parts.append(
                    f"field order differs at position {position}: "
                    f"artifact has {got}, schema has {expected}"
                )
                break
    return "; ".join(parts) or "field lists differ"


class ColumnarPostings:
    """An immutable CSR-style snapshot of the inverted index.

    Layout (all arrays numpy, row positions sorted within an entry):

    - ``vocabulary``: term -> term id (terms sorted lexicographically);
    - ``term_offsets[t] : term_offsets[t + 1]`` — the slice of *entries*
      (one entry per (term, field) pair holding the term) for term ``t``;
    - ``entry_fields`` / ``entry_counts`` — field id and matching-row
      count of each entry (fields ascending within a term);
    - ``entry_offsets[e] : entry_offsets[e + 1]`` — the slice of
      ``row_positions`` / ``row_tfs`` for entry ``e``;
    - ``field_sizes`` / ``field_tokens`` — per-field indexed-value and
      token counts (the TF normaliser), in schema field order.

    Scores are computed from the same integers with the same operations
    as the dict layout (``count / field_size`` then ``* idf``), so every
    float is bit-identical to the reference path.
    """

    __slots__ = (
        "vocabulary",
        "term_offsets",
        "entry_fields",
        "entry_counts",
        "entry_offsets",
        "row_positions",
        "row_tfs",
        "field_sizes",
        "field_tokens",
        "fields",
        "field_ids",
        "n_fields",
    )

    def __init__(
        self,
        vocabulary: dict[str, int],
        term_offsets: np.ndarray,
        entry_fields: np.ndarray,
        entry_counts: np.ndarray,
        entry_offsets: np.ndarray,
        row_positions: np.ndarray,
        row_tfs: np.ndarray,
        field_sizes: np.ndarray,
        field_tokens: np.ndarray,
        fields: tuple[ColumnRef, ...],
    ) -> None:
        self.vocabulary = vocabulary
        self.term_offsets = term_offsets
        self.entry_fields = entry_fields
        self.entry_counts = entry_counts
        self.entry_offsets = entry_offsets
        self.row_positions = row_positions
        self.row_tfs = row_tfs
        self.field_sizes = field_sizes
        self.field_tokens = field_tokens
        self.fields = fields
        self.field_ids = {ref: i for i, ref in enumerate(fields)}
        self.n_fields = len(fields)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_postings(
        cls,
        postings: dict[str, dict[ColumnRef, dict[int, int]]],
        field_sizes: dict[ColumnRef, int],
        field_tokens: dict[ColumnRef, int],
    ) -> "ColumnarPostings":
        """Seal the mutable dict layout into an immutable snapshot.

        The row-level work is vectorised: the Python pass only flattens
        the per-entry position maps into flat lists (C-level ``extend``
        over dict views, insertion order), then one global lexsort under
        (entry rank, position) replaces the per-entry ``sorted`` +
        flatten. The final arrays are identical to the sealed layout the
        per-entry loop produced.
        """
        fields = tuple(field_sizes)
        field_ids = {ref: i for i, ref in enumerate(fields)}
        terms = sorted(postings)
        vocabulary = {term: i for i, term in enumerate(terms)}
        entry_term: list[int] = []
        entry_field: list[int] = []
        entry_rows: list[int] = []
        flat_positions: list[int] = []
        flat_tfs: list[int] = []
        for t, term in enumerate(terms):
            for ref, rows in postings[term].items():
                entry_term.append(t)
                entry_field.append(field_ids[ref])
                entry_rows.append(len(rows))
                flat_positions.extend(rows.keys())
                flat_tfs.extend(rows.values())
        n_entries = len(entry_term)
        entry_terms = np.asarray(entry_term, dtype=np.int64)
        raw_fields = np.asarray(entry_field, dtype=np.int64)
        counts = np.asarray(entry_rows, dtype=np.int64)
        # Entries ordered by (term, field id). The outer loop already
        # emits terms in vocabulary order, so the (stable) lexsort only
        # has to settle field order within each term.
        entry_order = np.lexsort((raw_fields, entry_terms))
        sorted_counts = counts[entry_order]
        entry_offsets = np.zeros(n_entries + 1, dtype=np.int64)
        np.cumsum(sorted_counts, out=entry_offsets[1:])
        term_offsets = np.zeros(len(terms) + 1, dtype=np.int64)
        np.cumsum(np.bincount(entry_terms, minlength=len(terms)), out=term_offsets[1:])
        if flat_positions:
            positions = np.asarray(flat_positions, dtype=np.int64)
            tfs = np.asarray(flat_tfs, dtype=np.int64)
            # Each flattened row keeps its entry's *final* rank, so one
            # global sort under (entry rank, position) both places the
            # entries in (term, field) order and sorts positions
            # ascending within each entry.
            entry_rank = np.empty(n_entries, dtype=np.int64)
            entry_rank[entry_order] = np.arange(n_entries)
            row_order = np.lexsort((positions, np.repeat(entry_rank, counts)))
            row_positions = positions[row_order]
            row_tfs = tfs[row_order]
        else:
            row_positions = np.empty(0, dtype=np.int64)
            row_tfs = np.empty(0, dtype=np.int64)
        return cls(
            vocabulary=vocabulary,
            term_offsets=term_offsets,
            entry_fields=raw_fields[entry_order].astype(np.int32),
            entry_counts=sorted_counts,
            entry_offsets=entry_offsets,
            row_positions=row_positions,
            row_tfs=row_tfs,
            field_sizes=np.asarray(
                [field_sizes[ref] for ref in fields], dtype=np.int64
            ),
            field_tokens=np.asarray(
                [field_tokens[ref] for ref in fields], dtype=np.int64
            ),
            fields=fields,
        )

    def to_postings(
        self,
    ) -> dict[str, dict[ColumnRef, dict[int, int]]]:
        """Rebuild the mutable dict layout (for incremental refresh after
        a pure artifact load, and for the ``columnar=False`` reference)."""
        postings: dict[str, dict[ColumnRef, dict[int, int]]] = defaultdict(dict)
        for term, t in self.vocabulary.items():
            by_field = postings[term]
            for e in range(int(self.term_offsets[t]), int(self.term_offsets[t + 1])):
                ref = self.fields[int(self.entry_fields[e])]
                lo, hi = int(self.entry_offsets[e]), int(self.entry_offsets[e + 1])
                by_field[ref] = {
                    int(p): int(f)
                    for p, f in zip(self.row_positions[lo:hi], self.row_tfs[lo:hi])
                }
        return postings

    # -- scoring -----------------------------------------------------------

    def _term_entries(self, term: str) -> slice | None:
        t = self.vocabulary.get(term)
        if t is None:
            return None
        return slice(int(self.term_offsets[t]), int(self.term_offsets[t + 1]))

    def _entry_of(self, term: str, ref: ColumnRef) -> int | None:
        """Index of the (term, field) entry, or ``None`` when absent.

        The single lookup behind every scalar read path: binary search of
        the field id within the term's entry slice (fields are stored
        ascending per term).
        """
        entries = self._term_entries(term)
        field_id = self.field_ids.get(ref)
        if entries is None or field_id is None:
            return None
        e = entries.start + int(
            np.searchsorted(self.entry_fields[entries], field_id)
        )
        if e >= entries.stop or int(self.entry_fields[e]) != field_id:
            return None
        return e

    def _idf(self, entry_count: int) -> float:
        # Same expression over the same integers as the dict layout.
        return math.log(1.0 + self.n_fields / entry_count)

    def attribute_scores(
        self, keyword: str, field_sizes: np.ndarray | None = None
    ) -> dict[ColumnRef, float]:
        """TF-IDF relevance of *keyword* per attribute (array slicing).

        *field_sizes* substitutes the sealed per-field sizes — the delta
        layer passes the database's *current* sizes so an untouched
        term's scores track live mutations bit-identically to a rebuild.
        """
        entries = self._term_entries(keyword.casefold())
        if entries is None:
            return {}
        fields = self.entry_fields[entries]
        all_sizes = self.field_sizes if field_sizes is None else field_sizes
        sizes = all_sizes[fields]
        # int64 / int64 -> float64 matches Python's int / int division;
        # the subsequent `* idf` keeps the reference association order.
        values = (self.entry_counts[entries] / sizes) * self._idf(
            entries.stop - entries.start
        )
        return {
            self.fields[int(field)]: float(value)
            for field, value, size in zip(fields, values, sizes)
            if size > 0
        }

    def score(
        self,
        keyword: str,
        ref: ColumnRef,
        field_sizes: np.ndarray | None = None,
    ) -> float:
        """Relevance of *keyword* for one attribute (0.0 when absent)."""
        term = keyword.casefold()
        e = self._entry_of(term, ref)
        if e is None:
            return 0.0
        all_sizes = self.field_sizes if field_sizes is None else field_sizes
        field_size = int(all_sizes[self.field_ids[ref]])
        if field_size == 0:
            return 0.0
        entries = self._term_entries(term)
        assert entries is not None
        return (int(self.entry_counts[e]) / field_size) * self._idf(
            entries.stop - entries.start
        )

    def selectivity(
        self,
        keyword: str,
        ref: ColumnRef,
        field_sizes: np.ndarray | None = None,
    ) -> float:
        """Fraction of the attribute's values matching *keyword*."""
        e = self._entry_of(keyword.casefold(), ref)
        if e is None:
            return 0.0
        all_sizes = self.field_sizes if field_sizes is None else field_sizes
        field_size = int(all_sizes[self.field_ids[ref]])
        if field_size == 0:
            return 0.0
        return int(self.entry_counts[e]) / field_size

    def matching_row_positions(self, keyword: str, ref: ColumnRef) -> list[int]:
        """Sorted row positions of *keyword* in ``ref`` (stored sorted)."""
        e = self._entry_of(keyword.casefold(), ref)
        if e is None:
            return []
        lo, hi = int(self.entry_offsets[e]), int(self.entry_offsets[e + 1])
        return [int(p) for p in self.row_positions[lo:hi]]

    def emission_block(
        self,
        keywords: Sequence[str],
        refs: Sequence[ColumnRef],
        field_sizes: np.ndarray | None = None,
    ) -> np.ndarray:
        """Scores of every keyword against every requested attribute.

        The batched form of :meth:`attribute_scores`: one ``(len(keywords),
        len(refs))`` float matrix filled by array slicing per keyword — the
        vectorised pass the forward stage scores a whole query with. Cell
        values are bit-identical to ``attribute_scores(kw).get(ref, 0.0)``.
        """
        ref_ids = np.asarray(
            [self.field_ids.get(ref, -1) for ref in refs], dtype=np.int64
        )
        all_sizes = self.field_sizes if field_sizes is None else field_sizes
        # Scatter per-keyword field scores into a dense per-field row, then
        # gather the requested columns: O(nnz + len(refs)) per keyword.
        out = np.zeros((len(keywords), len(refs)))
        row = np.zeros(self.n_fields + 1)  # slot -1 absorbs unknown refs
        for i, keyword in enumerate(keywords):
            entries = self._term_entries(keyword.casefold())
            if entries is None:
                continue
            fields = self.entry_fields[entries]
            row[fields] = (
                self.entry_counts[entries] / all_sizes[fields]
            ) * self._idf(entries.stop - entries.start)
            out[i] = row[ref_ids]
            row[fields] = 0.0
        return out

    @property
    def vocabulary_size(self) -> int:
        return len(self.vocabulary)

    # -- persistence -------------------------------------------------------

    def arrays(self) -> dict[str, np.ndarray]:
        """The snapshot's array payload (for ``np.savez``)."""
        return {
            "terms": np.asarray(list(self.vocabulary), dtype=str),
            "term_offsets": self.term_offsets,
            "entry_fields": self.entry_fields,
            "entry_counts": self.entry_counts,
            "entry_offsets": self.entry_offsets,
            "row_positions": self.row_positions,
            "row_tfs": self.row_tfs,
            "field_sizes": self.field_sizes,
            "field_tokens": self.field_tokens,
        }

    @classmethod
    def from_arrays(
        cls, data: dict[str, np.ndarray], fields: tuple[ColumnRef, ...]
    ) -> "ColumnarPostings":
        """Rehydrate a snapshot from a saved array payload.

        ``asanyarray`` keeps ``np.memmap`` inputs as memmaps (same-dtype
        conversion is a no-op view, and ``asarray`` would launder the
        subclass away) — a snapshot attached by a mmap load stays
        visibly backed by the artifact file.
        """
        terms = [str(t) for t in data["terms"]]
        return cls(
            vocabulary={term: i for i, term in enumerate(terms)},
            term_offsets=np.asanyarray(data["term_offsets"], dtype=np.int64),
            entry_fields=np.asanyarray(data["entry_fields"], dtype=np.int32),
            entry_counts=np.asanyarray(data["entry_counts"], dtype=np.int64),
            entry_offsets=np.asanyarray(data["entry_offsets"], dtype=np.int64),
            row_positions=np.asanyarray(data["row_positions"], dtype=np.int64),
            row_tfs=np.asanyarray(data["row_tfs"], dtype=np.int64),
            field_sizes=np.asanyarray(data["field_sizes"], dtype=np.int64),
            field_tokens=np.asanyarray(data["field_tokens"], dtype=np.int64),
            fields=fields,
        )

    def __repr__(self) -> str:
        return (
            f"ColumnarPostings(terms={len(self.vocabulary)}, "
            f"entries={len(self.entry_fields)}, fields={self.n_fields})"
        )


class FullTextIndex:
    """Inverted index mapping terms to per-attribute posting lists."""

    #: Touched-term count past which a background merge reseals the CSR
    #: snapshot (reads stay layered and lock-held meanwhile).
    DELTA_SOFT_LIMIT = 256
    #: Touched-term count past which the snapshot is dropped outright
    #: and the next read reseals synchronously — layering a huge delta
    #: would serve most reads from the dicts anyway.
    DELTA_HARD_LIMIT = 4096

    def __init__(self, db: Database, columnar: bool = True) -> None:
        self._db = db
        self._columnar = columnar
        #: term -> {ColumnRef -> {row_position -> term frequency}} — the
        #: mutable layout refreshes append into. Empty (and flagged
        #: unhydrated) right after an artifact load; rebuilt from the
        #: snapshot only if a later mutation needs appending.
        self._postings: dict[str, dict[ColumnRef, dict[int, int]]] = defaultdict(dict)
        self._postings_hydrated = True
        #: ColumnRef -> number of indexed (non-null) values
        self._field_sizes: dict[ColumnRef, int] = {}
        #: ColumnRef -> total token count
        self._field_tokens: dict[ColumnRef, int] = {}
        #: table name -> number of rows already indexed
        self._indexed_rows: dict[str, int] = {}
        for table in db.tables:
            for column in table.schema.columns:
                ref = ColumnRef(table.name, column.name)
                self._field_sizes[ref] = 0
                self._field_tokens[ref] = 0
            self._indexed_rows[table.name] = 0
        self._n_fields = len(self._field_sizes)
        #: table name -> number of deletion-log entries already unindexed
        self._indexed_deletions: dict[str, int] = {
            table.name: 0 for table in db.tables
        }
        #: The sealed columnar layout; None = stale (resealed on demand).
        self._snapshot: ColumnarPostings | None = None
        #: Terms whose postings differ from the sealed snapshot. While
        #: non-empty, reads *layer*: these terms come from the dicts,
        #: everything else from the snapshot with live field sizes.
        self._delta_terms: set[str] = set()
        #: Current per-field sizes in snapshot field order (the override
        #: array layered reads pass); invalidated by every mutation.
        self._live_sizes: np.ndarray | None = None
        self._merge_thread: threading.Thread | None = None
        #: Mutation generation the index state corresponds to — the last
        #: applied journal sequence number at save/load time. Purely
        #: bookkeeping for the artifact republish cycle; 0 = unmanaged.
        self.generation = 0
        #: True while the snapshot arrays are np.memmap views of a saved
        #: artifact (reset when a mutation forces a fresh in-heap seal).
        self._mmapped = False
        # Built lazily: the first read triggers the initial refresh, so
        # constructing an index (e.g. for an execute-only endpoint that
        # never searches) costs nothing.
        self._built_version = -1
        self._lock = threading.RLock()
        # The batch tier forks while sibling searches may sit inside
        # this lock (every columnar read enters it); forked children get
        # a fresh one (see repro.forksafe).
        register_lock_holder(self, _reset_fulltext_lock)

    @property
    def columnar(self) -> bool:
        """Whether reads are served from the columnar snapshot."""
        return self._columnar

    @property
    def mmapped(self) -> bool:
        """Whether the snapshot is memory-mapped from a saved artifact."""
        return self._mmapped

    def refresh(self) -> None:
        """Index rows inserted since the last build.

        Tables are append-only (the substrate supports no delete/update),
        so refreshing reduces to scanning each table's tail — O(new rows),
        not O(all rows). Safe to call at any time and from any thread
        (wrappers are shared across threaded engines): the build is
        serialised, and a second caller finds no unindexed tail left.
        """
        with self._lock:
            self._refresh_locked()

    def warm(self) -> None:
        """Force the build now (refresh + seal the columnar snapshot).

        Reads do this lazily; endpoints that want the cost paid at setup
        time (and the index-build benchmark) call it explicitly.
        """
        with self._lock:
            self._refresh_locked()
            if self._columnar and (self._snapshot is None or self._delta_terms):
                self._seal_locked()

    def merge(self) -> None:
        """Fold the write delta back into a sealed columnar snapshot.

        Runs in the background once a delta outgrows ``DELTA_SOFT_LIMIT``
        (reads stay layered and correct meanwhile); callable directly by
        anything that wants the CSR layout current *now*.
        """
        with self._lock:
            self._refresh_locked()
            if self._columnar and (self._snapshot is None or self._delta_terms):
                self._seal_locked()

    @property
    def delta_terms(self) -> frozenset[str]:
        """Terms currently layered over the sealed snapshot."""
        with self._lock:
            return frozenset(self._delta_terms)

    def _hydrate_locked(self) -> None:
        # Loaded from an artifact and now needed mutably: rebuild the
        # mutable layout from the snapshot once, then append normally.
        if not self._postings_hydrated:
            assert self._snapshot is not None
            self._postings = defaultdict(dict, self._snapshot.to_postings())
            self._postings_hydrated = True

    def _refresh_locked(self) -> None:
        # Snapshot the version (and each table's length) BEFORE scanning:
        # a row inserted concurrently mid-scan then leaves the snapshot
        # behind the live version, so the next read refreshes again
        # instead of silently treating the unscanned row as indexed.
        version = self._db.version
        if version == self._built_version:
            return
        self._hydrate_locked()
        changed = False
        touched: set[str] = set()
        for table in self._db.tables:
            watermark = self._indexed_rows[table.name]
            # 1. Unindex the deletion-log tail. Entries at or past the
            # indexed watermark were never indexed — the tail scan below
            # skips their tombstones, so there is nothing to remove.
            log = table.deletion_log
            done = self._indexed_deletions.get(table.name, 0)
            if done < len(log):
                changed = True
                for position in log[done:]:
                    if position < watermark:
                        self._unindex_position_locked(table, position, touched)
                self._indexed_deletions[table.name] = len(log)
            # 2. Index the physical tail, skipping rows already deleted.
            rows = table.storage_rows
            end = len(rows)
            if watermark >= end:
                continue
            changed = True
            for column in table.schema.columns:
                ref = ColumnRef(table.name, column.name)
                position = table.column_position(column.name)
                indexed = 0
                tokens_total = 0
                for row_position in range(watermark, end):
                    if table.is_deleted(row_position):
                        continue
                    tokens = tokenize_value(rows[row_position][position])
                    if not tokens:
                        continue
                    indexed += 1
                    tokens_total += len(tokens)
                    for term, frequency in Counter(tokens).items():
                        field_postings = self._postings[term].setdefault(ref, {})
                        field_postings[row_position] = frequency
                        touched.add(term)
                self._field_sizes[ref] += indexed
                self._field_tokens[ref] += tokens_total
            self._indexed_rows[table.name] = end
        if changed:
            self._live_sizes = None
            if not self._columnar or self._snapshot is None:
                self._snapshot = None  # stale: resealed on the next read
                self._mmapped = False  # the reseal materialises in heap
                self._delta_terms.clear()
            else:
                # Keep the sealed snapshot and layer the delta over it.
                self._delta_terms |= touched
                if len(self._delta_terms) > self.DELTA_HARD_LIMIT:
                    self._snapshot = None
                    self._mmapped = False
                    self._delta_terms.clear()
                else:
                    self._maybe_merge_in_background_locked()
        self._built_version = version

    def _unindex_position_locked(
        self, table, position: int, touched: set[str]
    ) -> None:
        """Remove one tombstoned row's postings (the inverse of indexing).

        The physical row tuple is still readable (tombstones never
        reclaim storage), so the exact tokens indexed earlier can be
        re-derived and removed symmetrically.
        """
        row = table.storage_rows[position]
        for column in table.schema.columns:
            ref = ColumnRef(table.name, column.name)
            value_position = table.column_position(column.name)
            tokens = tokenize_value(row[value_position])
            if not tokens:
                continue
            self._field_sizes[ref] -= 1
            self._field_tokens[ref] -= len(tokens)
            for term in set(tokens):
                by_field = self._postings.get(term)
                if by_field is None:
                    continue
                field_postings = by_field.get(ref)
                if field_postings is None:
                    continue
                field_postings.pop(position, None)
                # Prune empty levels so the dict layout stays exactly
                # what a from-scratch build of the live rows produces
                # (vocabulary size and idf read structure, not values).
                if not field_postings:
                    del by_field[ref]
                if not by_field:
                    del self._postings[term]
                touched.add(term)

    def _maybe_merge_in_background_locked(self) -> None:
        if len(self._delta_terms) < self.DELTA_SOFT_LIMIT:
            return
        thread = self._merge_thread
        if thread is not None and thread.is_alive():
            return
        thread = threading.Thread(
            target=self.merge, name="fulltext-merge", daemon=True
        )
        self._merge_thread = thread
        thread.start()

    def _seal_locked(self) -> None:
        self._hydrate_locked()
        self._snapshot = ColumnarPostings.from_postings(
            self._postings, self._field_sizes, self._field_tokens
        )
        self._mmapped = False
        self._delta_terms.clear()
        self._live_sizes = None

    # -- read-path plumbing ------------------------------------------------

    def _current(self) -> ColumnarPostings | None:
        """One version check, then the refreshed columnar snapshot.

        Every public read calls this exactly once: the mutation counter is
        compared (and a lazy refresh run) under the lock a single time,
        and columnar reads then proceed lock-free on the immutable
        snapshot. Returns ``None`` when the index runs in dict mode — the
        caller falls back to the reference path under :meth:`_reading` —
        *or* while a write delta is layered over the snapshot, in which
        case the caller's ``_reading`` block routes each term to the
        delta dicts or the snapshot (with live field sizes) per term.
        """
        if not self._columnar:
            return None
        with self._lock:
            self._refresh_locked()
            if self._snapshot is None:
                self._seal_locked()
            if self._delta_terms:
                return None
            return self._snapshot

    @contextmanager
    def _reading(self):
        """Serialise dict-layout reads against refreshes (lazily refreshing).

        Dict read paths iterate the posting dicts a concurrent refresh
        would mutate, so the whole read holds the lock; the version
        counter is checked once on entry. Covers both the lazy initial
        build (_built_version starts at -1, below any real version) and
        later inserts.
        """
        with self._lock:
            self._refresh_locked()
            self._hydrate_locked()
            yield

    def _layered_locked(self, term: str) -> ColumnarPostings | None:
        """The snapshot to answer *term* from under a write delta.

        ``None`` routes the term to the mutable dicts: either the index
        runs in dict mode, no snapshot exists, or *term* was touched
        since the seal. Untouched terms read the snapshot arrays with
        :meth:`_live_sizes_locked` substituted — bit-identical to a full
        rebuild because neither the term's postings nor its entry span
        changed, and the tf denominator is taken from the live counts.
        """
        if not self._columnar or not self._delta_terms:
            return None
        if self._snapshot is None or term in self._delta_terms:
            return None
        return self._snapshot

    def _live_sizes_locked(self, snapshot: ColumnarPostings) -> np.ndarray:
        if self._live_sizes is None:
            self._live_sizes = np.asarray(
                [self._field_sizes[ref] for ref in snapshot.fields],
                dtype=np.int64,
            )
        return self._live_sizes

    # -- vocabulary --------------------------------------------------------

    def __contains__(self, term: str) -> bool:
        snapshot = self._current()
        if snapshot is not None:
            return term.casefold() in snapshot.vocabulary
        with self._reading():
            return term.casefold() in self._postings

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct indexed terms."""
        snapshot = self._current()
        if snapshot is not None:
            return snapshot.vocabulary_size
        with self._reading():
            return len(self._postings)

    def fields(self) -> tuple[ColumnRef, ...]:
        """Every indexed attribute."""
        return tuple(self._field_sizes)

    # -- scoring -----------------------------------------------------------

    def _idf(self, by_field: dict[ColumnRef, dict[int, int]]) -> float:
        """Inverse document frequency of a term given its posting map."""
        return math.log(1.0 + self._n_fields / len(by_field))

    def attribute_scores(self, keyword: str) -> dict[ColumnRef, float]:
        """TF-IDF relevance of *keyword* for each attribute containing it.

        The score for attribute *a* is ``tf_a * idf`` where ``tf_a`` is the
        fraction of *a*'s indexed values containing the keyword and ``idf``
        dampens terms spread across many attributes. Scores are positive and
        unnormalised; the HMM emission builder normalises them per state.
        """
        snapshot = self._current()
        if snapshot is not None:
            return snapshot.attribute_scores(keyword)
        with self._reading():
            return self._attribute_scores_locked(keyword)

    def _attribute_scores_locked(self, keyword: str) -> dict[ColumnRef, float]:
        term = keyword.casefold()
        snapshot = self._layered_locked(term)
        if snapshot is not None:
            return snapshot.attribute_scores(
                keyword, field_sizes=self._live_sizes_locked(snapshot)
            )
        by_field = self._postings.get(term)
        if not by_field:
            return {}
        idf = self._idf(by_field)
        scores: dict[ColumnRef, float] = {}
        for ref, rows in by_field.items():
            field_size = self._field_sizes.get(ref, 0)
            if field_size == 0:
                continue
            tf = len(rows) / field_size
            scores[ref] = tf * idf
        return scores

    def attribute_scores_many(
        self, keywords: Sequence[str]
    ) -> list[dict[ColumnRef, float]]:
        """Per-keyword :meth:`attribute_scores`, one version check total."""
        snapshot = self._current()
        if snapshot is not None:
            return [snapshot.attribute_scores(keyword) for keyword in keywords]
        with self._reading():
            return [self._attribute_scores_locked(keyword) for keyword in keywords]

    def emission_block(
        self, keywords: Sequence[str], refs: Sequence[ColumnRef]
    ) -> np.ndarray:
        """Batched keyword-vs-attribute score matrix (see
        :meth:`ColumnarPostings.emission_block`); works in both layouts."""
        snapshot = self._current()
        if snapshot is not None:
            return snapshot.emission_block(keywords, refs)
        out = np.zeros((len(keywords), len(refs)))
        with self._reading():
            snapshot = self._snapshot if self._columnar else None
            if snapshot is not None and self._delta_terms:
                # Layered batch: untouched keywords in one snapshot pass
                # (live sizes substituted), touched ones from the dicts.
                untouched = [
                    i
                    for i, keyword in enumerate(keywords)
                    if keyword.casefold() not in self._delta_terms
                ]
                if untouched:
                    out[untouched] = snapshot.emission_block(
                        [keywords[i] for i in untouched],
                        refs,
                        field_sizes=self._live_sizes_locked(snapshot),
                    )
                remaining = set(range(len(keywords))) - set(untouched)
            else:
                remaining = set(range(len(keywords)))
            for i in sorted(remaining):
                scores = self._attribute_scores_locked(keywords[i])
                if scores:
                    out[i] = [scores.get(ref, 0.0) for ref in refs]
        return out

    def score(self, keyword: str, ref: ColumnRef) -> float:
        """Relevance of *keyword* for one attribute (0.0 when absent).

        A direct posting lookup — O(log entries) in the columnar layout,
        O(1) dict probes in the reference layout — unlike
        :meth:`attribute_scores` which materialises the full dict.
        """
        snapshot = self._current()
        if snapshot is not None:
            return snapshot.score(keyword, ref)
        with self._reading():
            term = keyword.casefold()
            snapshot = self._layered_locked(term)
            if snapshot is not None:
                return snapshot.score(
                    keyword, ref, field_sizes=self._live_sizes_locked(snapshot)
                )
            by_field = self._postings.get(term)
            if not by_field:
                return 0.0
            rows = by_field.get(ref)
            if not rows:
                return 0.0
            field_size = self._field_sizes.get(ref, 0)
            if field_size == 0:
                return 0.0
            return (len(rows) / field_size) * self._idf(by_field)

    # -- retrieval -----------------------------------------------------------

    def matching_row_positions(self, keyword: str, ref: ColumnRef) -> list[int]:
        """Row positions in ``ref.table`` whose ``ref.column`` contains *keyword*."""
        snapshot = self._current()
        if snapshot is not None:
            return snapshot.matching_row_positions(keyword, ref)
        with self._reading():
            term = keyword.casefold()
            snapshot = self._layered_locked(term)
            if snapshot is not None:
                # Positions need no size override: an untouched term's
                # posting rows are exactly current.
                return snapshot.matching_row_positions(keyword, ref)
            by_field = self._postings.get(term, {})
            return sorted(by_field.get(ref, {}))

    def selectivity(self, keyword: str, ref: ColumnRef) -> float:
        """Fraction of the attribute's values matching *keyword*.

        Reads the postings directly (no sort, no full-dict rebuild):
        only the matching-row *count* is needed, not the positions.
        """
        snapshot = self._current()
        if snapshot is not None:
            return snapshot.selectivity(keyword, ref)
        with self._reading():
            term = keyword.casefold()
            snapshot = self._layered_locked(term)
            if snapshot is not None:
                return snapshot.selectivity(
                    keyword, ref, field_sizes=self._live_sizes_locked(snapshot)
                )
            field_size = self._field_sizes.get(ref, 0)
            if field_size == 0:
                return 0.0
            by_field = self._postings.get(term, {})
            return len(by_field.get(ref, ())) / field_size

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path, generation: int | None = None) -> None:
        """Atomically write the built index to *path* as one ``.npz`` artifact.

        The artifact holds the columnar arrays plus a JSON catalog header
        (schema name, field list, per-table indexed row counts and
        processed deletion counts, source mutation counter, the applied
        journal *generation*, and a per-array content checksum) that
        :meth:`load` validates against the live database — a stale or
        torn artifact is refused, never silently served.

        Publication is crash-atomic: the archive is written to a
        same-directory temp file, flushed and fsynced, then renamed over
        *path* with ``os.replace``. Readers therefore only ever observe
        the previous complete generation or the new complete generation;
        warm mmap readers keep serving the inode they have open until
        they re-attach between requests.
        """
        path = Path(path)
        with self._lock:
            self._refresh_locked()
            if self._snapshot is None or self._delta_terms:
                self._seal_locked()
            snapshot = self._snapshot
            assert snapshot is not None
            if generation is not None:
                self.generation = generation
            arrays = snapshot.arrays()
            header = {
                "format": _ARTIFACT_FORMAT,
                "schema": self._db.schema.name,
                "fields": [str(ref) for ref in self._field_sizes],
                "indexed_rows": dict(self._indexed_rows),
                "deleted_rows": dict(self._indexed_deletions),
                "source_version": self._built_version,
                "generation": self.generation,
                "checksums": {
                    name: zlib.crc32(np.ascontiguousarray(array).tobytes())
                    for name, array in arrays.items()
                },
            }
        temp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            with open(temp, "wb") as handle:
                np.savez(
                    handle,
                    header=np.asarray(json.dumps(header, sort_keys=True)),
                    **arrays,
                )
                handle.flush()
                faults.fire("fs.fsync")
                os.fsync(handle.fileno())
            faults.fire("artifact.replace")
            os.replace(temp, path)
        except BaseException:
            temp.unlink(missing_ok=True)
            raise
        # Make the rename itself durable (best effort — not every
        # filesystem supports opening a directory for fsync).
        try:
            dir_fd = os.open(path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(dir_fd)

    @classmethod
    def load(
        cls,
        path: str | Path,
        db: Database,
        columnar: bool = True,
        mmap: bool = False,
    ) -> "FullTextIndex":
        """Attach a saved artifact to *db*, skipping the build entirely.

        With ``mmap=True`` the snapshot arrays are read-only
        ``np.memmap`` views over the artifact file instead of private
        in-heap copies — preforked serving workers mapping the same file
        share one set of physical pages through the page cache. Scores
        are bit-identical either way.

        Raises :class:`~repro.errors.IndexArtifactError` when the artifact
        does not describe *db*'s current state: wrong format, wrong
        schema, different field set, or a mutation-counter / row-count
        mismatch (the database moved since the artifact was written).
        """
        faults.fire("artifact.load")
        header, arrays = _read_artifact(path, mmap=mmap)
        if header.get("format") != _ARTIFACT_FORMAT:
            raise IndexArtifactError(
                f"index artifact {path} has format {header.get('format')!r}, "
                f"expected {_ARTIFACT_FORMAT!r}"
            )
        if header.get("schema") != db.schema.name:
            raise IndexArtifactError(
                f"index artifact {path} was built for schema "
                f"{header.get('schema')!r}, not {db.schema.name!r}"
            )
        # Verify every array's content checksum BEFORE handing anything
        # to numpy parsing or mmap-backed readers: a byte-truncated or
        # bit-flipped member must surface here as a stale-artifact
        # refusal, not as a downstream parse error or silent bad scores
        # (the mmap fast path bypasses the ZIP CRC entirely).
        checksums = header.get("checksums") or {}
        for name, array in arrays.items():
            expected = checksums.get(name)
            actual = zlib.crc32(np.ascontiguousarray(array).tobytes())
            if expected is None or int(expected) != actual:
                raise IndexArtifactError(
                    f"index artifact {path}: checksum mismatch for array "
                    f"{name!r} (expected {expected}, got {actual}) — "
                    f"the artifact is truncated or corrupt"
                )
        index = cls(db, columnar=columnar)
        fields = [str(ref) for ref in index._field_sizes]
        artifact_fields = header.get("fields") or []
        if artifact_fields != fields:
            raise IndexArtifactError(
                f"index artifact {path} covers a different field set: "
                + _field_mismatch(artifact_fields, fields)
            )
        indexed_rows = header.get("indexed_rows", {})
        deleted_rows = header.get("deleted_rows", {})
        for table in db.tables:
            if indexed_rows.get(table.name) != table.physical_count:
                raise IndexArtifactError(
                    f"index artifact {path} indexed "
                    f"{indexed_rows.get(table.name)} rows of {table.name!r}, "
                    f"database holds {table.physical_count}"
                )
            if deleted_rows.get(table.name, 0) != len(table.deletion_log):
                raise IndexArtifactError(
                    f"index artifact {path} processed "
                    f"{deleted_rows.get(table.name, 0)} deletions of "
                    f"{table.name!r}, database logged "
                    f"{len(table.deletion_log)}"
                )
        if header.get("source_version") != db.version:
            raise IndexArtifactError(
                f"index artifact {path} was built at database version "
                f"{header.get('source_version')}, database is at {db.version}"
            )
        snapshot = ColumnarPostings.from_arrays(arrays, tuple(index._field_sizes))
        index._snapshot = snapshot
        index._mmapped = mmap
        index._field_sizes = dict(
            zip(snapshot.fields, (int(s) for s in snapshot.field_sizes))
        )
        index._field_tokens = dict(
            zip(snapshot.fields, (int(t) for t in snapshot.field_tokens))
        )
        index._indexed_rows = {name: int(n) for name, n in indexed_rows.items()}
        index._indexed_deletions = {
            table.name: int(deleted_rows.get(table.name, 0))
            for table in db.tables
        }
        index._built_version = int(header["source_version"])
        index.generation = int(header.get("generation", 0))
        # The dict layout is rebuilt from the snapshot only when needed:
        # lazily on the next mutation (columnar mode) or right now
        # (dict mode, whose reads walk the dicts).
        index._postings_hydrated = False
        if not columnar:
            index._postings = defaultdict(dict, snapshot.to_postings())
            index._postings_hydrated = True
        return index

    @staticmethod
    def peek_generation(path: str | Path) -> int | None:
        """The mutation generation stamped into the artifact at *path*.

        A tolerant header-only read (no array payload touched): recovery
        uses it to decide how far back in the journal replay must start.
        Any unreadable, missing or pre-v2 artifact answers ``None`` —
        the caller then replays from the beginning.
        """
        try:
            with zipfile.ZipFile(path) as archive:
                with archive.open("header.npy") as member:
                    header = json.loads(
                        str(np.lib.format.read_array(member, allow_pickle=False))
                    )
            generation = header.get("generation")
            return None if generation is None else int(generation)
        except (OSError, KeyError, ValueError, zipfile.BadZipFile, zlib.error):
            return None

    @classmethod
    def load_or_build(
        cls,
        path: str | Path,
        db: Database,
        columnar: bool = True,
        mmap: bool = False,
        readonly: bool = False,
    ) -> "FullTextIndex":
        """Load the artifact at *path* if it matches *db*, else build and
        (re)write it — the warm-process entry point and what CI's cached
        index step calls.

        ``readonly=True`` opens the artifact without ever touching it: a
        stale or missing artifact raises :class:`IndexArtifactError`
        instead of being rebuilt and rewritten. That is the contract
        preforked serving workers need — N workers racing to "repair"
        one shared artifact file would corrupt each other's reads; only
        the parent (readonly off) builds, exactly once, before forking.

        ``mmap=True`` maps the snapshot arrays from the artifact file
        (see :meth:`load`); combined with the build path, a freshly
        built artifact is re-opened mapped so the returned index serves
        from shared pages rather than the private build-time heap.
        """
        artifact = Path(path)
        stale: IndexArtifactError | None = None
        # Read-only openers retry briefly: an unreadable artifact can be a
        # sibling process mid-rewrite, which resolves itself in tens of
        # milliseconds — jittered-exponential so racing workers decorrelate.
        schedule = RetryPolicy(attempts=3, base_delay_s=0.05, max_delay_s=0.2)
        for delay in itertools.chain(schedule.delays(), (None,)):
            if artifact.exists():
                try:
                    return cls.load(artifact, db, columnar=columnar, mmap=mmap)
                except IndexArtifactError as exc:
                    stale = exc
            if not readonly or delay is None:
                break
            time.sleep(delay)
        if readonly:
            raise IndexArtifactError(
                f"index artifact {artifact} unusable in read-only mode "
                f"({stale if stale is not None else 'no artifact present'})"
            )
        index = cls(db, columnar=columnar)
        index.warm()
        index.save(artifact)
        if mmap:
            try:
                return cls.load(artifact, db, columnar=columnar, mmap=True)
            except IndexArtifactError:
                # A racing writer replaced the file between our save and
                # re-open; the in-heap build we just made is still correct.
                return index
        return index

    def __repr__(self) -> str:
        layout = "columnar" if self._columnar else "dict"
        return (
            f"FullTextIndex(fields={self._n_fields}, layout={layout}, "
            f"built_version={self._built_version})"
        )
