"""CSV import/export for database instances.

Examples and tests persist small instances as one CSV file per table inside
a directory; the loader validates against the declared schema and runs the
deferred integrity check.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.db.database import Database
from repro.db.schema import Schema
from repro.errors import SchemaError

__all__ = ["dump_database", "load_database"]


def dump_database(db: Database, directory: str | Path) -> list[Path]:
    """Write one ``<table>.csv`` per table into *directory*.

    Returns the written paths. NULLs are serialised as empty strings, which
    the type coercion layer maps back to ``None`` on load.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for table in db.tables:
        path = target / f"{table.name}.csv"
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.schema.column_names)
            for row in table:
                writer.writerow(["" if v is None else v for v in row])
        written.append(path)
    return written


def load_database(schema: Schema, directory: str | Path) -> Database:
    """Load a database instance from per-table CSV files.

    Every schema table must have a matching file; headers must list exactly
    the declared columns (any order). Referential integrity is verified
    after all tables are loaded.
    """
    source = Path(directory)
    db = Database(schema)
    for table_schema in schema.tables:
        path = source / f"{table_schema.name}.csv"
        if not path.exists():
            raise SchemaError(f"missing CSV file for table: {table_schema.name!r}")
        with path.open(newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise SchemaError(f"empty CSV file: {path}") from None
            if set(header) != set(table_schema.column_names):
                raise SchemaError(
                    f"CSV header mismatch for {table_schema.name!r}: "
                    f"expected {sorted(table_schema.column_names)}, "
                    f"got {sorted(header)}"
                )
            rows = ({name: value for name, value in zip(header, row)} for row in reader)
            db.insert_many(table_schema.name, rows)
    db.check_integrity()
    return db
