"""The database: a schema plus one :class:`~repro.db.table.Table` per relation.

This is the substrate QUEST runs on top of. It enforces referential
integrity on demand, exposes the catalog used during the setup phase and
owns the full-text indexes the forward step queries for emission
probabilities.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.db.schema import ColumnRef, Schema
from repro.db.table import Row, Table
from repro.errors import IntegrityError, UnknownTableError

__all__ = ["Database"]


class Database:
    """An in-memory relational database instance."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._tables: dict[str, Table] = {
            table.name: Table(table) for table in schema.tables
        }

    # -- access -----------------------------------------------------------

    def table(self, name: str) -> Table:
        """The table instance for *name* (raises :class:`UnknownTableError`)."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    @property
    def tables(self) -> tuple[Table, ...]:
        """All table instances, in schema order."""
        return tuple(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def total_rows(self) -> int:
        """Total number of tuples stored across all tables."""
        return sum(len(table) for table in self._tables.values())

    def row_count(self, name: str) -> int:
        """Number of tuples stored in *name*."""
        return len(self.table(name))

    def table_rows(self, name: str) -> list[Row]:
        """All rows of *name* in insertion order (live list — do not mutate)."""
        return self.table(name).rows

    @property
    def version(self) -> int:
        """Monotonic mutation counter summed over all tables.

        Derived structures (the full-text index, storage backends) compare
        this against the version they were built at to detect staleness —
        the same invalidation contract the Steiner cache honours on
        ``SchemaGraph.add_edge``.
        """
        return sum(table.version for table in self._tables.values())

    def column_values(self, ref: ColumnRef) -> list[Any]:
        """All values of the referenced column, in row order."""
        return self.table(ref.table).column_values(ref.column)

    # -- mutation ---------------------------------------------------------

    def insert(self, table: str, values: Mapping[str, Any] | Sequence[Any]) -> Row:
        """Insert one row into *table*."""
        return self.table(table).insert(values)

    def insert_many(
        self, table: str, rows: Iterable[Mapping[str, Any] | Sequence[Any]]
    ) -> int:
        """Bulk-insert rows into *table*; returns the number inserted."""
        return self.table(table).insert_many(iter(rows))

    def insert_rows(
        self, table: str, rows: Sequence[Mapping[str, Any] | Sequence[Any]]
    ) -> list[Row]:
        """Batch-insert into *table*, validating all rows before any apply."""
        return self.table(table).insert_rows(rows)

    def delete_rows(self, table: str, keys: Sequence[tuple[Any, ...] | Any]) -> int:
        """Tombstone the *table* rows behind *keys*; returns how many existed."""
        return self.table(table).delete_rows(keys)

    # -- integrity --------------------------------------------------------

    def check_integrity(self) -> None:
        """Verify every foreign key resolves to an existing referenced row.

        Checking is deferred (not per-insert) so generators may load tables
        in any order; datasets call this once after loading.
        """
        for fk in self.schema.foreign_keys:
            source = self.table(fk.table)
            target = self.table(fk.ref_table)
            target_values = target.distinct_values(fk.ref_column)
            position = source.column_position(fk.column)
            for row in source:
                value = row[position]
                if value is not None and value not in target_values:
                    raise IntegrityError(
                        f"dangling foreign key {fk}: value {value!r} "
                        f"has no match in {fk.ref_table}.{fk.ref_column}"
                    )

    def __repr__(self) -> str:
        return (
            f"Database({self.schema.name!r}, tables={len(self._tables)}, "
            f"rows={self.total_rows()})"
        )
