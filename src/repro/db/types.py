"""Column data types and value coercion for the in-memory relational engine.

QUEST reasons about *attribute domains* — the set of values an attribute may
take — both when matching keywords against values (forward step) and when a
hidden source only exposes a datatype and a regular expression of admissible
values (wrapper). This module centralises the datatype vocabulary so the
schema, the executor, the recognisers and the wrappers all agree on it.
"""

from __future__ import annotations

import enum
import re
from datetime import date, datetime
from typing import Any

from repro.errors import SchemaError

__all__ = ["DataType", "coerce", "is_null", "infer_type", "SQL_TYPE_NAMES"]


class DataType(enum.Enum):
    """Logical column types supported by the substrate."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    DATE = "date"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type order and compare numerically."""
        return self in (DataType.INTEGER, DataType.FLOAT)

    @property
    def is_textual(self) -> bool:
        """Whether values of this type participate in full-text indexing."""
        return self is DataType.TEXT


#: SQL type name used when rendering ``CREATE TABLE`` statements.
SQL_TYPE_NAMES: dict[DataType, str] = {
    DataType.INTEGER: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.TEXT: "VARCHAR",
    DataType.BOOLEAN: "BOOLEAN",
    DataType.DATE: "DATE",
}

_TRUE_LITERALS = frozenset({"true", "t", "yes", "y", "1"})
_FALSE_LITERALS = frozenset({"false", "f", "no", "n", "0"})
_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")
_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")


def is_null(value: Any) -> bool:
    """Return ``True`` for SQL NULL equivalents (``None`` or empty string)."""
    return value is None or (isinstance(value, str) and value == "")


def coerce(value: Any, dtype: DataType) -> Any:
    """Coerce *value* to the Python representation of *dtype*.

    ``None`` (and the empty string) pass through as ``None`` — the substrate
    models SQL NULL with Python ``None``. Raises :class:`SchemaError` when
    the value cannot represent the type, mirroring a strict DBMS.
    """
    if is_null(value):
        return None
    try:
        if dtype is DataType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str) and _INT_RE.match(value.strip()):
                return int(value.strip())
        elif dtype is DataType.FLOAT:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str) and _FLOAT_RE.match(value.strip()):
                return float(value.strip())
        elif dtype is DataType.TEXT:
            if isinstance(value, str):
                return value
            if isinstance(value, (int, float, bool, date)):
                return str(value)
        elif dtype is DataType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, int) and value in (0, 1):
                return bool(value)
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in _TRUE_LITERALS:
                    return True
                if lowered in _FALSE_LITERALS:
                    return False
        elif dtype is DataType.DATE:
            if isinstance(value, datetime):
                return value.date()
            if isinstance(value, date):
                return value
            if isinstance(value, str) and _DATE_RE.match(value.strip()):
                return date.fromisoformat(value.strip())
    except (ValueError, OverflowError) as exc:
        raise SchemaError(f"cannot coerce {value!r} to {dtype.value}") from exc
    raise SchemaError(f"cannot coerce {value!r} to {dtype.value}")


def infer_type(values: list[Any]) -> DataType:
    """Infer the narrowest :class:`DataType` covering *values*.

    Used by the CSV loader and the hidden-source wrapper when only sample
    values (not a declared schema) are available. Nulls are ignored; an
    all-null column defaults to TEXT.
    """
    candidates = [
        DataType.BOOLEAN,
        DataType.INTEGER,
        DataType.FLOAT,
        DataType.DATE,
        DataType.TEXT,
    ]
    non_null = [v for v in values if not is_null(v)]
    if not non_null:
        return DataType.TEXT
    for dtype in candidates:
        try:
            for value in non_null:
                coerce(value, dtype)
        except SchemaError:
            continue
        return dtype
    return DataType.TEXT
