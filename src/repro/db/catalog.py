"""Catalog: the setup-phase metadata snapshot QUEST extracts from a source.

The paper's setup phase reads the database schema "from the metadata stored
in the source catalogues" and precomputes per-attribute information (the
full-text normalisation coefficients, admissible-value metadata for hidden
sources). The :class:`Catalog` bundles those artefacts so the engine modules
never touch raw tables directly during search.
"""

from __future__ import annotations

from repro.db.database import Database
from repro.db.schema import ColumnRef, ForeignKey, Schema
from repro.db.stats import (
    ColumnProfile,
    JoinStatistics,
    join_statistics,
    profile_column,
)

__all__ = ["Catalog"]


class Catalog:
    """Precomputed statistics over a database instance.

    Profiles and join statistics are computed lazily and cached; a catalog
    built from a schema alone (``Catalog.schema_only``) answers structural
    questions but reports no instance statistics, mirroring hidden sources.
    """

    def __init__(self, schema: Schema, db: Database | None = None) -> None:
        self.schema = schema
        self._db = db
        self._profiles: dict[ColumnRef, ColumnProfile] = {}
        self._join_stats: dict[ForeignKey, JoinStatistics] = {}

    @classmethod
    def from_database(cls, db: Database) -> "Catalog":
        """Catalog with full instance access."""
        return cls(db.schema, db)

    @classmethod
    def schema_only(cls, schema: Schema) -> "Catalog":
        """Catalog for a hidden source: schema metadata, no instance."""
        return cls(schema, None)

    @property
    def has_instance(self) -> bool:
        """Whether instance-level statistics are available."""
        return self._db is not None

    def profile(self, ref: ColumnRef) -> ColumnProfile | None:
        """Column profile, or ``None`` for schema-only catalogs."""
        if self._db is None:
            return None
        if ref not in self._profiles:
            self._profiles[ref] = profile_column(self._db, ref)
        return self._profiles[ref]

    def join_stats(self, fk: ForeignKey) -> JoinStatistics | None:
        """Join statistics for *fk*, or ``None`` for schema-only catalogs."""
        if self._db is None:
            return None
        if fk not in self._join_stats:
            self._join_stats[fk] = join_statistics(self._db, fk)
        return self._join_stats[fk]

    def table_cardinality(self, table: str) -> int | None:
        """Row count of *table*, or ``None`` without instance access."""
        if self._db is None:
            return None
        return len(self._db.table(table))

    def warm(self) -> None:
        """Eagerly compute every profile and join statistic (setup phase)."""
        if self._db is None:
            return
        for ref in self.schema.column_refs():
            self.profile(ref)
        for fk in self.schema.foreign_keys:
            self.join_stats(fk)

    def __repr__(self) -> str:
        access = "full" if self.has_instance else "schema-only"
        return f"Catalog({self.schema.name!r}, access={access})"
