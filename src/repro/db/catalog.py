"""Catalog: the setup-phase metadata snapshot QUEST extracts from a source.

The paper's setup phase reads the database schema "from the metadata stored
in the source catalogues" and precomputes per-attribute information (the
full-text normalisation coefficients, admissible-value metadata for hidden
sources). The :class:`Catalog` bundles those artefacts so the engine modules
never touch raw tables directly during search.

Statistics are computed against the :class:`~repro.db.stats.InstanceSource`
protocol — column extensions and row counts — so a catalog can sit on a
plain :class:`~repro.db.database.Database` or on any storage backend from
:mod:`repro.storage`, and reports identical numbers either way.
"""

from __future__ import annotations

from repro.db.schema import ColumnRef, ForeignKey, Schema
from repro.db.stats import (
    ColumnProfile,
    InstanceSource,
    JoinStatistics,
    join_statistics,
    profile_column,
)

__all__ = ["Catalog"]


class Catalog:
    """Precomputed statistics over a database instance.

    Profiles and join statistics are computed lazily and cached; a catalog
    built from a schema alone (``Catalog.schema_only``) answers structural
    questions but reports no instance statistics, mirroring hidden sources.
    """

    def __init__(self, schema: Schema, source: InstanceSource | None = None) -> None:
        self.schema = schema
        self._source = source
        self._profiles: dict[ColumnRef, ColumnProfile] = {}
        self._join_stats: dict[ForeignKey, JoinStatistics] = {}
        self._stats_version = self._source_version()

    def _source_version(self) -> int:
        """Mutation counter of the source (0 for schema-only catalogs)."""
        return getattr(self._source, "version", 0) if self._source else 0

    def _invalidate_if_stale(self) -> None:
        # Cached statistics never outlive the data they summarise — the
        # same contract the emission cache and full-text index honour.
        version = self._source_version()
        if version != self._stats_version:
            self._profiles.clear()
            self._join_stats.clear()
            self._stats_version = version

    @classmethod
    def from_database(cls, db: InstanceSource) -> "Catalog":
        """Catalog with full instance access (a database or a backend)."""
        return cls(db.schema, db)  # type: ignore[attr-defined]

    @classmethod
    def schema_only(cls, schema: Schema) -> "Catalog":
        """Catalog for a hidden source: schema metadata, no instance."""
        return cls(schema, None)

    @property
    def has_instance(self) -> bool:
        """Whether instance-level statistics are available."""
        return self._source is not None

    def profile(self, ref: ColumnRef) -> ColumnProfile | None:
        """Column profile, or ``None`` for schema-only catalogs."""
        if self._source is None:
            return None
        self._invalidate_if_stale()
        if ref not in self._profiles:
            self._profiles[ref] = profile_column(self._source, ref)
        return self._profiles[ref]

    def join_stats(self, fk: ForeignKey) -> JoinStatistics | None:
        """Join statistics for *fk*, or ``None`` for schema-only catalogs."""
        if self._source is None:
            return None
        self._invalidate_if_stale()
        if fk not in self._join_stats:
            self._join_stats[fk] = join_statistics(self._source, fk)
        return self._join_stats[fk]

    def table_cardinality(self, table: str) -> int | None:
        """Row count of *table*, or ``None`` without instance access."""
        if self._source is None:
            return None
        return self._source.row_count(table)

    def warm(self) -> None:
        """Eagerly compute every profile and join statistic (setup phase)."""
        if self._source is None:
            return
        for ref in self.schema.column_refs():
            self.profile(ref)
        for fk in self.schema.foreign_keys:
            self.join_stats(fk)

    def __repr__(self) -> str:
        access = "full" if self.has_instance else "schema-only"
        return f"Catalog({self.schema.name!r}, access={access})"
