"""Evaluation of logical queries against the in-memory database.

The executor implements a straightforward but index-aware strategy:

1. apply local predicates to each FROM occurrence (scan, or index point
   lookup for equality predicates);
2. join occurrences one at a time, always preferring an occurrence connected
   to the already-joined ones through an equi-join condition, probing hash
   indexes built on the fly;
3. project (optionally de-duplicating) and apply LIMIT.

This supports everything the QUEST query builder emits: conjunctive
select-project-join queries with keyword (CONTAINS), LIKE and comparison
predicates. Disconnected FROM clauses fall back to cross products so the
executor is total over the query model.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Iterator

from repro.db.database import Database
from repro.db.fulltext import tokenize_value
from repro.db.query import Comparison, JoinCondition, Predicate, SelectQuery
from repro.db.table import Row, Table
from repro.errors import ExecutionError

__all__ = ["execute", "result_count", "ResultSet", "contains_match", "like_match"]


class ResultSet:
    """Materialised query output: named columns plus row tuples."""

    def __init__(self, columns: tuple[str, ...], rows: list[tuple[Any, ...]]) -> None:
        self.columns = columns
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by qualified column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:
        return f"ResultSet(columns={self.columns}, rows={len(self.rows)})"


@lru_cache(maxsize=1024)
def _like_to_regex(pattern: str) -> re.Pattern[str]:
    """Translate a SQL LIKE pattern into an anchored regex.

    ``%`` matches any run of characters, ``_`` exactly one; a backslash
    escapes the next character, so ``100\\%`` matches the literal string
    ``100%``. The translation is direct — no fnmatch round trip — which
    keeps ``*``/``?``/``[`` in patterns literal, as SQL requires. DOTALL
    lets wildcards span newlines embedded in values.
    """
    out = []
    i = 0
    while i < len(pattern):
        char = pattern[i]
        if char == "\\" and i + 1 < len(pattern):
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
        i += 1
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE | re.DOTALL)


def like_match(value: Any, pattern: Any) -> bool:
    """SQL LIKE over a stored value (NULL never matches).

    Shared by the in-memory executor and the SQLite backend (registered
    there as the ``QUEST_LIKE`` user function), so LIKE semantics are
    identical across storage backends by construction.
    """
    if value is None:
        return False
    return bool(_like_to_regex(str(pattern)).match(str(value)))


@lru_cache(maxsize=1024)
def _keyword_tokens(keyword: str) -> list[str]:
    # The keyword is a per-predicate constant evaluated once per row:
    # cache its tokenisation so scans pay the regex once, not N times.
    # Callers must not mutate the returned list.
    return tokenize_value(keyword)


def contains_match(value: Any, keyword: Any) -> bool:
    """CONTAINS: the keyword's tokens occur contiguously in the value.

    Matching is consistent with :func:`~repro.db.fulltext.tokenize_value`
    — the same tokenisation the full-text index applies — so a keyword
    matches a value through the executor exactly when it matches it
    through the index: ``lake`` matches ``Blue Lake`` but no longer
    matches ``Lakeland`` (a substring of a longer token). Multi-token
    keywords match as a phrase (contiguous token run). A keyword with no
    tokens at all (pure punctuation) matches nothing.
    """
    if value is None:
        return False
    needle = _keyword_tokens(str(keyword))
    if not needle:
        return False
    haystack = tokenize_value(value)
    span = len(needle)
    return any(
        haystack[start : start + span] == needle
        for start in range(len(haystack) - span + 1)
    )


def _match(value: Any, predicate: Predicate) -> bool:
    """Evaluate one predicate against a single column value."""
    op = predicate.op
    if op is Comparison.CONTAINS:
        return contains_match(value, predicate.value)
    if op is Comparison.LIKE:
        return like_match(value, predicate.value)
    if value is None:
        return False  # SQL three-valued logic: NULL comparisons are not true
    other = predicate.value
    try:
        if op is Comparison.EQ:
            return bool(value == other)
        if op is Comparison.NE:
            return bool(value != other)
        if op is Comparison.LT:
            return bool(value < other)
        if op is Comparison.LE:
            return bool(value <= other)
        if op is Comparison.GT:
            return bool(value > other)
        if op is Comparison.GE:
            return bool(value >= other)
    except TypeError as exc:
        raise ExecutionError(
            f"type mismatch evaluating {predicate}: {value!r}"
        ) from exc
    raise ExecutionError(f"unsupported operator: {op}")  # pragma: no cover


def _filter_base(table: Table, predicates: list[Predicate]) -> list[Row]:
    """Rows of *table* satisfying all local *predicates*.

    Equality predicates on indexed values short-circuit through a hash
    index; everything else scans.
    """
    equality = [p for p in predicates if p.op is Comparison.EQ]
    if equality:
        seed = equality[0]
        candidates = table.lookup(seed.column, seed.value)
        rest = [p for p in predicates if p is not seed]
    else:
        candidates = table.rows
        rest = predicates
    if not rest:
        return list(candidates)
    positions = {p: table.column_position(p.column) for p in rest}
    return [
        row
        for row in candidates
        if all(_match(row[positions[p]], p) for p in rest)
    ]


def execute(db: Database, query: SelectQuery) -> ResultSet:
    """Evaluate *query* against *db* and materialise the results."""
    local: dict[str, list[Predicate]] = {alias: [] for alias in query.aliases}
    for predicate in query.predicates:
        local[predicate.alias].append(predicate)

    tables: dict[str, Table] = {
        ref.alias: db.table(ref.table) for ref in query.tables
    }
    base_rows: dict[str, list[Row]] = {
        alias: _filter_base(tables[alias], local[alias]) for alias in query.aliases
    }

    # Greedy join ordering: start from the most selective occurrence, then
    # repeatedly attach the connected occurrence with the fewest base rows.
    remaining = set(query.aliases)
    start = min(remaining, key=lambda alias: len(base_rows[alias]))
    remaining.discard(start)
    bound = [start]
    partials: list[dict[str, Row]] = [{start: row} for row in base_rows[start]]

    pending: list[JoinCondition] = list(query.joins)
    while remaining:
        step = _pick_next(bound, remaining, pending, base_rows)
        if step is None:
            # Disconnected clause: cross product with the smallest remainder.
            alias = min(remaining, key=lambda a: len(base_rows[a]))
            partials = [
                {**partial, alias: row}
                for partial in partials
                for row in base_rows[alias]
            ]
            remaining.discard(alias)
            bound.append(alias)
            continue
        alias, conditions = step
        partials = _hash_join(partials, alias, conditions, tables, base_rows[alias])
        remaining.discard(alias)
        bound.append(alias)
        pending = [c for c in pending if c not in conditions]

    # Residual join conditions between already-bound occurrences (cycles).
    for condition in pending:
        partials = [p for p in partials if _join_holds(p, condition, tables)]

    return _project(query, tables, partials)


def _pick_next(
    bound: list[str],
    remaining: set[str],
    pending: list[JoinCondition],
    base_rows: dict[str, list[Row]],
) -> tuple[str, list[JoinCondition]] | None:
    """Choose the next occurrence connected to the bound set, if any."""
    bound_set = set(bound)
    candidates: dict[str, list[JoinCondition]] = {}
    for condition in pending:
        left_in = condition.left_alias in bound_set
        right_in = condition.right_alias in bound_set
        if left_in and condition.right_alias in remaining:
            candidates.setdefault(condition.right_alias, []).append(condition)
        elif right_in and condition.left_alias in remaining:
            candidates.setdefault(condition.left_alias, []).append(condition)
    if not candidates:
        return None
    alias = min(candidates, key=lambda a: len(base_rows[a]))
    return alias, candidates[alias]


def _hash_join(
    partials: list[dict[str, Row]],
    alias: str,
    conditions: list[JoinCondition],
    tables: dict[str, Table],
    new_rows: list[Row],
) -> list[dict[str, Row]]:
    """Attach *alias* to each partial tuple through equi-join *conditions*."""
    # Normalise conditions so the new occurrence is always on the right.
    normal = [
        c if c.right_alias == alias else c.reversed() for c in conditions
    ]
    table = tables[alias]
    key_positions = tuple(table.column_position(c.right_column) for c in normal)
    build: dict[tuple[Any, ...], list[Row]] = {}
    for row in new_rows:
        key = tuple(row[p] for p in key_positions)
        if any(part is None for part in key):
            continue
        build.setdefault(key, []).append(row)

    probe_positions = [
        (c.left_alias, tables[c.left_alias].column_position(c.left_column))
        for c in normal
    ]
    joined: list[dict[str, Row]] = []
    for partial in partials:
        key = tuple(partial[a][p] for a, p in probe_positions)
        for row in build.get(key, ()):
            extended = dict(partial)
            extended[alias] = row
            joined.append(extended)
    return joined


def _join_holds(
    partial: dict[str, Row], condition: JoinCondition, tables: dict[str, Table]
) -> bool:
    """Whether a residual (cycle-closing) join condition is satisfied."""
    left = partial[condition.left_alias][
        tables[condition.left_alias].column_position(condition.left_column)
    ]
    right = partial[condition.right_alias][
        tables[condition.right_alias].column_position(condition.right_column)
    ]
    return left is not None and left == right


def _project(
    query: SelectQuery,
    tables: dict[str, Table],
    partials: list[dict[str, Row]],
) -> ResultSet:
    """Apply projection, DISTINCT and LIMIT to joined partial tuples."""
    if query.projection:
        targets = list(query.projection)
    else:
        targets = [
            (alias, column)
            for alias in query.aliases
            for column in tables[alias].schema.column_names
        ]
    positions = [
        (alias, tables[alias].column_position(column)) for alias, column in targets
    ]
    columns = tuple(f"{alias}.{column}" for alias, column in targets)

    rows: list[tuple[Any, ...]] = []
    seen: set[tuple[Any, ...]] = set()
    for partial in partials:
        row = tuple(partial[alias][position] for alias, position in positions)
        if query.distinct:
            if row in seen:
                continue
            seen.add(row)
        rows.append(row)
        if query.limit is not None and len(rows) >= query.limit:
            break
    return ResultSet(columns, rows)


def result_count(db: Database, query: SelectQuery) -> int:
    """Number of rows *query* returns (respecting DISTINCT and LIMIT)."""
    return len(execute(db, query))
