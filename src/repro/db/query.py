"""Logical query model: the select-project-join queries QUEST generates.

Explanations produced by the engine are instances of :class:`SelectQuery`;
the :mod:`repro.db.sqlgen` module renders them to SQL text and the
:mod:`repro.db.executor` module evaluates them against a
:class:`~repro.db.database.Database`. Keeping the logical form separate from
the SQL text lets tests and metrics compare queries structurally rather than
by string equality.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.db.schema import ColumnRef
from repro.errors import QueryError

__all__ = [
    "Comparison",
    "Predicate",
    "JoinCondition",
    "TableRef",
    "SelectQuery",
]


class Comparison(enum.Enum):
    """Predicate comparison operators supported by the executor."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    CONTAINS = "CONTAINS"  # case-insensitive keyword containment
    LIKE = "LIKE"  # SQL LIKE with % and _ wildcards

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class TableRef:
    """A table occurrence in the FROM clause, with an alias.

    Aliases make self-joins expressible; for the common case the alias is
    just the table name.
    """

    table: str
    alias: str

    @staticmethod
    def of(table: str, alias: str | None = None) -> "TableRef":
        """Convenience constructor defaulting the alias to the table name."""
        return TableRef(table, alias or table)

    def __str__(self) -> str:
        if self.alias == self.table:
            return self.table
        return f"{self.table} AS {self.alias}"


@dataclass(frozen=True)
class Predicate:
    """A WHERE-clause condition ``alias.column <op> value``."""

    alias: str
    column: str
    op: Comparison
    value: Any

    def __str__(self) -> str:
        rendered = f"'{self.value}'" if isinstance(self.value, str) else str(self.value)
        if self.op is Comparison.CONTAINS:
            return f"CONTAINS({self.alias}.{self.column}, {rendered})"
        return f"{self.alias}.{self.column} {self.op.value} {rendered}"


@dataclass(frozen=True)
class JoinCondition:
    """An equi-join ``left_alias.left_column = right_alias.right_column``."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def __str__(self) -> str:
        return (
            f"{self.left_alias}.{self.left_column} = "
            f"{self.right_alias}.{self.right_column}"
        )

    def reversed(self) -> "JoinCondition":
        """The same condition with sides swapped (joins are symmetric)."""
        return JoinCondition(
            self.right_alias, self.right_column, self.left_alias, self.left_column
        )


@dataclass(frozen=True)
class SelectQuery:
    """A conjunctive select-project-join query.

    Attributes:
        tables: FROM-clause occurrences; the first is the driving table.
        joins: equi-join conditions connecting the occurrences.
        predicates: conjunctive WHERE conditions.
        projection: output columns as ``(alias, column)`` pairs; empty means
            ``SELECT *`` over the driving table occurrence order.
        distinct: whether duplicate output rows are removed.
        limit: optional output row cap.
    """

    tables: tuple[TableRef, ...]
    joins: tuple[JoinCondition, ...] = ()
    predicates: tuple[Predicate, ...] = ()
    projection: tuple[tuple[str, str], ...] = ()
    distinct: bool = True
    limit: int | None = None

    def __post_init__(self) -> None:
        if not self.tables:
            raise QueryError("query has no FROM clause")
        aliases = [ref.alias for ref in self.tables]
        if len(aliases) != len(set(aliases)):
            raise QueryError(f"duplicate alias in FROM clause: {aliases}")
        alias_set = set(aliases)
        for join in self.joins:
            if join.left_alias not in alias_set or join.right_alias not in alias_set:
                raise QueryError(f"join references unknown alias: {join}")
        for predicate in self.predicates:
            if predicate.alias not in alias_set:
                raise QueryError(f"predicate references unknown alias: {predicate}")
        for alias, _column in self.projection:
            if alias not in alias_set:
                raise QueryError(f"projection references unknown alias: {alias}")

    # -- structural helpers ------------------------------------------------

    @property
    def aliases(self) -> tuple[str, ...]:
        """All FROM-clause aliases, in order."""
        return tuple(ref.alias for ref in self.tables)

    def table_of(self, alias: str) -> str:
        """The underlying table name for *alias*."""
        for ref in self.tables:
            if ref.alias == alias:
                return ref.table
        raise QueryError(f"unknown alias: {alias}")

    def table_names(self) -> frozenset[str]:
        """The set of distinct tables mentioned in FROM."""
        return frozenset(ref.table for ref in self.tables)

    def joined_column_refs(self) -> frozenset[ColumnRef]:
        """Qualified (real-table) columns participating in joins."""
        refs: set[ColumnRef] = set()
        for join in self.joins:
            refs.add(ColumnRef(self.table_of(join.left_alias), join.left_column))
            refs.add(ColumnRef(self.table_of(join.right_alias), join.right_column))
        return frozenset(refs)

    def predicate_column_refs(self) -> frozenset[ColumnRef]:
        """Qualified (real-table) columns appearing in WHERE predicates."""
        return frozenset(
            ColumnRef(self.table_of(p.alias), p.column) for p in self.predicates
        )

    def signature(self) -> tuple[Any, ...]:
        """An order-insensitive structural fingerprint.

        Two queries with the same tables, joins (up to direction) and
        predicates compare equal by signature; evaluation metrics use this
        to decide whether a generated explanation matches the gold query.
        """
        join_keys = frozenset(
            frozenset(
                {
                    (self.table_of(j.left_alias), j.left_column),
                    (self.table_of(j.right_alias), j.right_column),
                }
            )
            for j in self.joins
        )
        predicate_keys = frozenset(
            (self.table_of(p.alias), p.column, p.op.value, _fold(p.value))
            for p in self.predicates
        )
        return (self.table_names(), join_keys, predicate_keys)

    def matches(self, other: "SelectQuery") -> bool:
        """Structural equivalence used by the evaluation harness."""
        return self.signature() == other.signature()

    def __str__(self) -> str:
        from repro.db.sqlgen import render_sql

        return render_sql(self)


def _fold(value: Any) -> Any:
    """Case-fold string constants so signatures ignore letter case."""
    return value.casefold() if isinstance(value, str) else value


def _rebuild(query: SelectQuery, **changes: Any) -> SelectQuery:
    """Internal helper for derived-query construction."""
    kwargs = {
        "tables": query.tables,
        "joins": query.joins,
        "predicates": query.predicates,
        "projection": query.projection,
        "distinct": query.distinct,
        "limit": query.limit,
    }
    kwargs.update(changes)
    return SelectQuery(**kwargs)


def with_limit(query: SelectQuery, limit: int) -> SelectQuery:
    """Return *query* with an output cap applied."""
    return _rebuild(query, limit=limit)
