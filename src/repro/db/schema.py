"""Relational schema model: columns, tables, keys and foreign keys.

The schema is the central artifact in QUEST — both the forward step (HMM
state space: one state per table, per attribute and per attribute domain)
and the backward step (schema graph: one node per attribute, edges for
primary-key membership and foreign keys) are derived from it, not from the
instance. Schemas are therefore immutable value objects with rich lookup
helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.db.types import DataType
from repro.errors import SchemaError, UnknownColumnError, UnknownTableError

__all__ = ["Column", "ForeignKey", "TableSchema", "Schema", "ColumnRef"]


@dataclass(frozen=True)
class ColumnRef:
    """A fully qualified reference to a column, ``table.column``.

    ``ColumnRef``s key every hot dictionary in the engine — schema-graph
    adjacency, shortest-path maps, full-text postings — so the hash of the
    two-string tuple is computed once at construction and cached rather
    than recomputed per lookup. The cached value equals what the generated
    dataclass ``__hash__`` would return.
    """

    table: str
    column: str
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.table, self.column)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"

    @staticmethod
    def parse(text: str) -> "ColumnRef":
        """Parse ``"table.column"`` into a :class:`ColumnRef`."""
        table, sep, column = text.partition(".")
        if not sep or not table or not column:
            raise SchemaError(f"malformed column reference: {text!r}")
        return ColumnRef(table, column)


@dataclass(frozen=True)
class Column:
    """A single attribute of a table.

    ``synonyms`` carry schema annotations (alternative human names for the
    attribute) that the semantic matchers use; ``pattern`` optionally holds a
    regular expression of admissible values, which is the only instance-level
    knowledge available for hidden (Deep Web) sources.
    """

    name: str
    dtype: DataType
    nullable: bool = True
    synonyms: tuple[str, ...] = ()
    pattern: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A referential constraint from ``table.column`` to ``ref_table.ref_column``."""

    table: str
    column: str
    ref_table: str
    ref_column: str

    @property
    def source(self) -> ColumnRef:
        """The referencing side of the constraint."""
        return ColumnRef(self.table, self.column)

    @property
    def target(self) -> ColumnRef:
        """The referenced side (a primary-key column)."""
        return ColumnRef(self.ref_table, self.ref_column)

    def __str__(self) -> str:
        return f"{self.source} -> {self.target}"


@dataclass(frozen=True)
class TableSchema:
    """A table definition: ordered columns plus a primary key.

    ``synonyms`` mirror :attr:`Column.synonyms` at table granularity and are
    consumed by the a-priori HMM parameter builder and the hidden wrapper.
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...]
    synonyms: tuple[str, ...] = ()
    description: str = ""
    _by_name: dict[str, Column] = field(
        init=False, repr=False, compare=False, hash=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid table name: {self.name!r}")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} has no columns")
        by_name: dict[str, Column] = {}
        for column in self.columns:
            if column.name in by_name:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            by_name[column.name] = column
        if not self.primary_key:
            raise SchemaError(f"table {self.name!r} has no primary key")
        for key_col in self.primary_key:
            if key_col not in by_name:
                raise UnknownColumnError(self.name, key_col)
        object.__setattr__(self, "_by_name", by_name)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        """Look up a column by name, raising :class:`UnknownColumnError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownColumnError(self.name, name) from None

    def has_column(self, name: str) -> bool:
        """Whether the table declares a column called *name*."""
        return name in self._by_name

    def is_key_column(self, name: str) -> bool:
        """Whether *name* participates in the primary key."""
        return name in self.primary_key

    def non_key_columns(self) -> tuple[Column, ...]:
        """Columns that are not part of the primary key."""
        return tuple(c for c in self.columns if c.name not in self.primary_key)


class Schema:
    """A relational schema: a set of tables plus foreign-key constraints.

    The object validates referential consistency eagerly so every downstream
    consumer (HMM state builder, Steiner graph builder, SQL generator) can
    assume the constraints are well-formed.
    """

    def __init__(
        self,
        tables: list[TableSchema] | tuple[TableSchema, ...],
        foreign_keys: list[ForeignKey] | tuple[ForeignKey, ...] = (),
        name: str = "schema",
    ) -> None:
        self.name = name
        self._tables: dict[str, TableSchema] = {}
        for table in tables:
            if table.name in self._tables:
                raise SchemaError(f"duplicate table: {table.name!r}")
            self._tables[table.name] = table
        self._foreign_keys: tuple[ForeignKey, ...] = tuple(foreign_keys)
        seen: set[tuple[str, str, str, str]] = set()
        for fk in self._foreign_keys:
            self._validate_foreign_key(fk)
            signature = (fk.table, fk.column, fk.ref_table, fk.ref_column)
            if signature in seen:
                raise SchemaError(f"duplicate foreign key: {fk}")
            seen.add(signature)

    def _validate_foreign_key(self, fk: ForeignKey) -> None:
        source_table = self.table(fk.table)
        target_table = self.table(fk.ref_table)
        if not source_table.has_column(fk.column):
            raise UnknownColumnError(fk.table, fk.column)
        if not target_table.has_column(fk.ref_column):
            raise UnknownColumnError(fk.ref_table, fk.ref_column)
        if not target_table.is_key_column(fk.ref_column):
            raise SchemaError(
                f"foreign key {fk} must reference a primary-key column"
            )

    # -- lookup ---------------------------------------------------------

    @property
    def tables(self) -> tuple[TableSchema, ...]:
        """All table definitions, in insertion order."""
        return tuple(self._tables.values())

    @property
    def table_names(self) -> tuple[str, ...]:
        """Names of all tables, in insertion order."""
        return tuple(self._tables)

    @property
    def foreign_keys(self) -> tuple[ForeignKey, ...]:
        """All foreign-key constraints."""
        return self._foreign_keys

    def table(self, name: str) -> TableSchema:
        """Look up a table by name, raising :class:`UnknownTableError`."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        """Whether the schema declares a table called *name*."""
        return name in self._tables

    def column(self, ref: ColumnRef) -> Column:
        """Resolve a qualified column reference."""
        return self.table(ref.table).column(ref.column)

    def column_refs(self) -> Iterator[ColumnRef]:
        """Iterate every qualified column in the schema."""
        for table in self.tables:
            for column in table.columns:
                yield ColumnRef(table.name, column.name)

    def foreign_keys_of(self, table: str) -> tuple[ForeignKey, ...]:
        """Foreign keys whose referencing side lives in *table*."""
        return tuple(fk for fk in self._foreign_keys if fk.table == table)

    def foreign_keys_into(self, table: str) -> tuple[ForeignKey, ...]:
        """Foreign keys whose referenced side lives in *table*."""
        return tuple(fk for fk in self._foreign_keys if fk.ref_table == table)

    def join_edges(self) -> list[tuple[ColumnRef, ColumnRef]]:
        """All joinable column pairs implied by the foreign keys."""
        return [(fk.source, fk.target) for fk in self._foreign_keys]

    def adjacent_tables(self, table: str) -> set[str]:
        """Tables reachable from *table* through a single foreign key."""
        neighbours: set[str] = set()
        for fk in self._foreign_keys:
            if fk.table == table:
                neighbours.add(fk.ref_table)
            if fk.ref_table == table:
                neighbours.add(fk.table)
        neighbours.discard(table)
        return neighbours

    def tables_are_adjacent(self, left: str, right: str) -> bool:
        """Whether two tables are directly connected by a foreign key."""
        return right in self.adjacent_tables(left)

    # -- misc -----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        return (
            f"Schema({self.name!r}, tables={len(self._tables)}, "
            f"foreign_keys={len(self._foreign_keys)})"
        )
