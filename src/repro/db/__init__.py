"""Relational substrate: schema model, storage, queries, indexes, statistics.

This package is the self-contained "traditional DBMS" QUEST sits on top of:
an in-memory relational engine with typed columns, primary/foreign keys, a
select-project-join executor, a SQL renderer, a full-text inverted index and
the instance statistics (entropy, join mutual information) the backward step
consumes.
"""

from repro.db.catalog import Catalog
from repro.db.database import Database
from repro.db.executor import ResultSet, execute, result_count
from repro.db.fulltext import ColumnarPostings, FullTextIndex
from repro.db.query import (
    Comparison,
    JoinCondition,
    Predicate,
    SelectQuery,
    TableRef,
)
from repro.db.schema import Column, ColumnRef, ForeignKey, Schema, TableSchema
from repro.db.sqlgen import render_ddl, render_sql
from repro.db.stats import JoinStatistics, entropy, join_statistics, profile_column
from repro.db.table import Table
from repro.db.types import DataType

__all__ = [
    "Catalog",
    "Column",
    "ColumnRef",
    "ColumnarPostings",
    "Comparison",
    "DataType",
    "Database",
    "ForeignKey",
    "FullTextIndex",
    "JoinCondition",
    "JoinStatistics",
    "Predicate",
    "ResultSet",
    "Schema",
    "SelectQuery",
    "Table",
    "TableRef",
    "TableSchema",
    "entropy",
    "execute",
    "join_statistics",
    "profile_column",
    "render_ddl",
    "render_sql",
    "result_count",
]
