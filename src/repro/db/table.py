"""In-memory table storage with primary-key and secondary indexes.

Rows are stored as tuples in declaration order; the table maintains a
unique index on the primary key and builds hash indexes on demand for the
join executor. The representation favours clarity over raw speed but still
keeps point lookups and equi-join probes O(1).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterator, Mapping, Sequence

from repro.db.schema import TableSchema
from repro.db.types import coerce
from repro.errors import IntegrityError, UnknownColumnError

__all__ = ["Table", "Row", "normalise_row"]

#: A materialised row: values in column-declaration order.
Row = tuple[Any, ...]


def normalise_row(
    schema: TableSchema, values: Mapping[str, Any] | Sequence[Any]
) -> Row:
    """Coerce a mapping or positional sequence into a typed row tuple.

    Values are coerced to the declared column types and NOT NULL is
    enforced. Shared by every storage backend so row-validation
    semantics cannot drift between engines.
    """
    columns = schema.columns
    if isinstance(values, Mapping):
        unknown = set(values) - {column.name for column in columns}
        if unknown:
            raise UnknownColumnError(schema.name, sorted(unknown)[0])
        raw = [values.get(column.name) for column in columns]
    else:
        if len(values) != len(columns):
            raise IntegrityError(
                f"{schema.name}: expected {len(columns)} values, "
                f"got {len(values)}"
            )
        raw = list(values)
    row = []
    for column, value in zip(columns, raw):
        coerced = coerce(value, column.dtype)
        if coerced is None and not column.nullable:
            raise IntegrityError(f"{schema.name}.{column.name}: NULL not allowed")
        row.append(coerced)
    return tuple(row)


class Table:
    """A mutable relation instance conforming to a :class:`TableSchema`."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: list[Row] = []
        #: Monotonic mutation counter; derived structures (full-text
        #: indexes, backends) compare it to detect staleness.
        self.version = 0
        self._col_index: dict[str, int] = {
            column.name: position for position, column in enumerate(schema.columns)
        }
        self._pk_positions: tuple[int, ...] = tuple(
            self._col_index[name] for name in schema.primary_key
        )
        self._pk_index: dict[tuple[Any, ...], int] = {}
        self._secondary: dict[str, dict[Any, list[int]]] = {}

    # -- schema helpers ---------------------------------------------------

    @property
    def name(self) -> str:
        """The table name, as declared in the schema."""
        return self.schema.name

    def column_position(self, column: str) -> int:
        """Index of *column* within stored row tuples."""
        try:
            return self._col_index[column]
        except KeyError:
            raise UnknownColumnError(self.name, column) from None

    # -- mutation ---------------------------------------------------------

    def insert(self, values: Mapping[str, Any] | Sequence[Any]) -> Row:
        """Insert one row, given as a mapping or a positional sequence.

        Values are coerced to the declared column types; NOT NULL and
        primary-key uniqueness are enforced. Returns the stored row tuple.
        """
        row = self._normalise(values)
        key = tuple(row[p] for p in self._pk_positions)
        if any(part is None for part in key):
            raise IntegrityError(f"{self.name}: primary key may not be NULL")
        if key in self._pk_index:
            raise IntegrityError(f"{self.name}: duplicate primary key {key!r}")
        position = len(self._rows)
        self._rows.append(row)
        self._pk_index[key] = position
        self.version += 1
        for column, index in self._secondary.items():
            index[row[self._col_index[column]]].append(position)
        return row

    def insert_many(self, rows: Iterator[Mapping[str, Any] | Sequence[Any]]) -> int:
        """Insert rows in bulk; returns the number inserted."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def _normalise(self, values: Mapping[str, Any] | Sequence[Any]) -> Row:
        return normalise_row(self.schema, values)

    # -- access -----------------------------------------------------------

    @property
    def rows(self) -> list[Row]:
        """All stored rows (live list — do not mutate)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def get(self, key: tuple[Any, ...] | Any) -> Row | None:
        """Point lookup by primary key; scalar keys may be passed bare."""
        if not isinstance(key, tuple):
            key = (key,)
        position = self._pk_index.get(key)
        return None if position is None else self._rows[position]

    def column_values(self, column: str) -> list[Any]:
        """All values of *column*, in row order (including NULLs)."""
        position = self.column_position(column)
        return [row[position] for row in self._rows]

    def distinct_values(self, column: str) -> set[Any]:
        """Distinct non-NULL values of *column*."""
        position = self.column_position(column)
        return {row[position] for row in self._rows if row[position] is not None}

    # -- indexing ---------------------------------------------------------

    def ensure_index(self, column: str) -> dict[Any, list[int]]:
        """Build (or fetch) a hash index on *column* for equi-join probes."""
        if column not in self._secondary:
            position = self.column_position(column)
            index: dict[Any, list[int]] = defaultdict(list)
            for row_position, row in enumerate(self._rows):
                index[row[position]].append(row_position)
            self._secondary[column] = index
        return self._secondary[column]

    def lookup(self, column: str, value: Any) -> list[Row]:
        """All rows whose *column* equals *value* (index-accelerated)."""
        index = self.ensure_index(column)
        return [self._rows[p] for p in index.get(value, ())]

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={len(self._rows)})"
