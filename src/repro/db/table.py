"""In-memory table storage with primary-key and secondary indexes.

Rows are stored as tuples in declaration order; the table maintains a
unique index on the primary key and builds hash indexes on demand for the
join executor. The representation favours clarity over raw speed but still
keeps point lookups and equi-join probes O(1).

Deletes are *tombstones*: the physical row list is append-only forever,
so a row's position — the coordinate every full-text posting and sealed
columnar snapshot speaks in — stays valid across any mutation history.
``rows`` serves the live view (tombstones filtered); ``storage_rows``
serves the physical list for positional consumers (the full-text
refresher, the persisted artifact's row counts, position-addressed
baselines).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterator, Mapping, Sequence

from repro.db.schema import TableSchema
from repro.db.types import coerce
from repro.errors import IntegrityError, UnknownColumnError

__all__ = ["Table", "Row", "normalise_row"]

#: A materialised row: values in column-declaration order.
Row = tuple[Any, ...]


def normalise_row(
    schema: TableSchema, values: Mapping[str, Any] | Sequence[Any]
) -> Row:
    """Coerce a mapping or positional sequence into a typed row tuple.

    Values are coerced to the declared column types and NOT NULL is
    enforced. Shared by every storage backend so row-validation
    semantics cannot drift between engines.
    """
    columns = schema.columns
    if isinstance(values, Mapping):
        unknown = set(values) - {column.name for column in columns}
        if unknown:
            raise UnknownColumnError(schema.name, sorted(unknown)[0])
        raw = [values.get(column.name) for column in columns]
    else:
        if len(values) != len(columns):
            raise IntegrityError(
                f"{schema.name}: expected {len(columns)} values, "
                f"got {len(values)}"
            )
        raw = list(values)
    row = []
    for column, value in zip(columns, raw):
        coerced = coerce(value, column.dtype)
        if coerced is None and not column.nullable:
            raise IntegrityError(f"{schema.name}.{column.name}: NULL not allowed")
        row.append(coerced)
    return tuple(row)


class Table:
    """A mutable relation instance conforming to a :class:`TableSchema`."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: list[Row] = []
        #: Monotonic mutation counter; derived structures (full-text
        #: indexes, backends) compare it to detect staleness.
        self.version = 0
        self._col_index: dict[str, int] = {
            column.name: position for position, column in enumerate(schema.columns)
        }
        self._pk_positions: tuple[int, ...] = tuple(
            self._col_index[name] for name in schema.primary_key
        )
        self._pk_index: dict[tuple[Any, ...], int] = {}
        self._secondary: dict[str, dict[Any, list[int]]] = {}
        #: Tombstoned physical positions (never reused, never renumbered).
        self._deleted: set[int] = set()
        #: Append-only history of tombstoned positions, in deletion
        #: order — the full-text refresher consumes its tail to unindex
        #: exactly the rows deleted since its last pass.
        self._deletion_log: list[int] = []
        self._live_cache: tuple[int, list[Row]] | None = None

    # -- schema helpers ---------------------------------------------------

    @property
    def name(self) -> str:
        """The table name, as declared in the schema."""
        return self.schema.name

    def column_position(self, column: str) -> int:
        """Index of *column* within stored row tuples."""
        try:
            return self._col_index[column]
        except KeyError:
            raise UnknownColumnError(self.name, column) from None

    # -- mutation ---------------------------------------------------------

    def insert(self, values: Mapping[str, Any] | Sequence[Any]) -> Row:
        """Insert one row, given as a mapping or a positional sequence.

        Values are coerced to the declared column types; NOT NULL and
        primary-key uniqueness are enforced. Returns the stored row tuple.
        """
        row = self._normalise(values)
        key = tuple(row[p] for p in self._pk_positions)
        if any(part is None for part in key):
            raise IntegrityError(f"{self.name}: primary key may not be NULL")
        if key in self._pk_index:
            raise IntegrityError(f"{self.name}: duplicate primary key {key!r}")
        position = len(self._rows)
        self._rows.append(row)
        self._pk_index[key] = position
        self.version += 1
        for column, index in self._secondary.items():
            index[row[self._col_index[column]]].append(position)
        return row

    def insert_many(self, rows: Iterator[Mapping[str, Any] | Sequence[Any]]) -> int:
        """Insert rows in bulk; returns the number inserted."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def insert_rows(
        self, rows: Sequence[Mapping[str, Any] | Sequence[Any]]
    ) -> list[Row]:
        """Insert a batch, validating *every* row before applying any.

        The all-then-apply split is what the write-ahead journal leans
        on: once a batch validates, applying it cannot fail, so the
        journal may durably record the mutation before a single row
        lands — an acknowledged batch is always replayable in full.
        """
        normalised = self.prepare_rows(rows)
        self.apply_prepared(normalised)
        return normalised

    def prepare_rows(
        self, rows: Sequence[Mapping[str, Any] | Sequence[Any]]
    ) -> list[Row]:
        """Validate a batch without applying it (the journal's first half).

        Normalises every row, enforces PK non-NULL and uniqueness against
        both the stored index and the batch itself. The returned rows are
        guaranteed to apply cleanly via :meth:`apply_prepared` — nothing
        between the two calls can make the batch fail.
        """
        normalised: list[Row] = []
        seen: set[tuple[Any, ...]] = set()
        for values in rows:
            row = self._normalise(values)
            key = tuple(row[p] for p in self._pk_positions)
            if any(part is None for part in key):
                raise IntegrityError(f"{self.name}: primary key may not be NULL")
            if key in self._pk_index or key in seen:
                raise IntegrityError(f"{self.name}: duplicate primary key {key!r}")
            seen.add(key)
            normalised.append(row)
        return normalised

    def apply_prepared(self, normalised: Sequence[Row]) -> None:
        """Apply rows previously validated by :meth:`prepare_rows`."""
        for row in normalised:
            key = tuple(row[p] for p in self._pk_positions)
            position = len(self._rows)
            self._rows.append(row)
            self._pk_index[key] = position
            self.version += 1
            for column, index in self._secondary.items():
                index[row[self._col_index[column]]].append(position)

    def delete_rows(self, keys: Sequence[tuple[Any, ...] | Any]) -> int:
        """Tombstone the rows behind *keys*; returns how many existed.

        Physical positions are never reclaimed or renumbered — the row
        tuple stays readable (so index maintenance can re-tokenise it)
        but disappears from every live view, lookup and secondary index.
        Absent keys are skipped, which makes replaying a journaled
        delete idempotent.
        """
        deleted = 0
        for key in keys:
            key = self.normalise_key(key)
            position = self._pk_index.pop(key, None)
            if position is None:
                continue
            self._deleted.add(position)
            self._deletion_log.append(position)
            self.version += 1
            deleted += 1
            row = self._rows[position]
            for column, index in self._secondary.items():
                postings = index.get(row[self._col_index[column]])
                if postings is not None:
                    postings.remove(position)
        return deleted

    def normalise_key(self, key: tuple[Any, ...] | Any) -> tuple[Any, ...]:
        """Coerce *key* to the primary key's declared column types.

        Scalar keys may be passed bare. Journaled keys round-trip
        through JSON (dates become ISO strings), so replay funnels them
        back through :func:`~repro.db.types.coerce` here.
        """
        if not isinstance(key, tuple):
            key = tuple(key) if isinstance(key, list) else (key,)
        if len(key) != len(self._pk_positions):
            raise IntegrityError(
                f"{self.name}: primary key takes {len(self._pk_positions)} "
                f"values, got {len(key)}"
            )
        columns = self.schema.columns
        return tuple(
            coerce(part, columns[p].dtype)
            for part, p in zip(key, self._pk_positions)
        )

    def _normalise(self, values: Mapping[str, Any] | Sequence[Any]) -> Row:
        return normalise_row(self.schema, values)

    # -- access -----------------------------------------------------------

    @property
    def rows(self) -> list[Row]:
        """All *live* rows in insertion order (do not mutate).

        With no deletions this is the physical list itself (zero-copy,
        the overwhelmingly common case); once tombstones exist it is a
        filtered copy cached per mutation version.
        """
        if not self._deleted:
            return self._rows
        cached = self._live_cache
        if cached is not None and cached[0] == self.version:
            return cached[1]
        live = [
            row
            for position, row in enumerate(self._rows)
            if position not in self._deleted
        ]
        self._live_cache = (self.version, live)
        return live

    @property
    def storage_rows(self) -> list[Row]:
        """The physical row list, tombstones included (do not mutate).

        Positional consumers — the full-text refresher, artifact row
        counts, baselines addressing rows by posting position — must
        read this, never :attr:`rows`.
        """
        return self._rows

    @property
    def physical_count(self) -> int:
        """Physical rows ever inserted (tombstones included)."""
        return len(self._rows)

    @property
    def deleted_count(self) -> int:
        """How many rows have been tombstoned."""
        return len(self._deleted)

    @property
    def deletion_log(self) -> list[int]:
        """Tombstoned positions in deletion order (do not mutate)."""
        return self._deletion_log

    def is_deleted(self, position: int) -> bool:
        """Whether physical *position* is tombstoned."""
        return position in self._deleted

    def __len__(self) -> int:
        return len(self._rows) - len(self._deleted)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def get(self, key: tuple[Any, ...] | Any) -> Row | None:
        """Point lookup by primary key; scalar keys may be passed bare."""
        if not isinstance(key, tuple):
            key = (key,)
        position = self._pk_index.get(key)
        return None if position is None else self._rows[position]

    def column_values(self, column: str) -> list[Any]:
        """All live values of *column*, in row order (including NULLs)."""
        position = self.column_position(column)
        return [row[position] for row in self.rows]

    def distinct_values(self, column: str) -> set[Any]:
        """Distinct non-NULL live values of *column*."""
        position = self.column_position(column)
        return {row[position] for row in self.rows if row[position] is not None}

    # -- indexing ---------------------------------------------------------

    def ensure_index(self, column: str) -> dict[Any, list[int]]:
        """Build (or fetch) a hash index on *column* for equi-join probes."""
        if column not in self._secondary:
            position = self.column_position(column)
            index: dict[Any, list[int]] = defaultdict(list)
            for row_position, row in enumerate(self._rows):
                if row_position not in self._deleted:
                    index[row[position]].append(row_position)
            self._secondary[column] = index
        return self._secondary[column]

    def lookup(self, column: str, value: Any) -> list[Row]:
        """All rows whose *column* equals *value* (index-accelerated)."""
        index = self.ensure_index(column)
        return [self._rows[p] for p in index.get(value, ())]

    def __repr__(self) -> str:
        detail = f"Table({self.name!r}, rows={len(self)}"
        if self._deleted:
            detail += f", deleted={len(self._deleted)}"
        return detail + ")"
