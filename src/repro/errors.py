"""Exception hierarchy for the QUEST reproduction.

Every error raised by the library derives from :class:`QuestError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the failing subsystem.
"""

from __future__ import annotations


class QuestError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(QuestError):
    """A schema definition is inconsistent (duplicate names, bad references)."""


class IntegrityError(QuestError):
    """A data modification violates a key or referential constraint."""


class UnknownTableError(SchemaError):
    """A referenced table does not exist in the schema."""

    def __init__(self, table: str) -> None:
        super().__init__(f"unknown table: {table!r}")
        self.table = table


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in its table."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"unknown column: {table!r}.{column!r}")
        self.table = table
        self.column = column


class QueryError(QuestError):
    """A logical query is malformed (bad joins, missing aliases, ...)."""


class ExecutionError(QuestError):
    """A well-formed query failed during evaluation."""


class AccessDeniedError(QuestError):
    """An operation requires instance access the wrapper does not provide.

    Raised by hidden-source (Deep Web) wrappers whenever the engine asks for
    data that only a full-access source could supply.
    """


class ModelError(QuestError):
    """An HMM is structurally invalid or numerically degenerate."""


class TrainingError(ModelError):
    """E-M training received unusable feedback data."""


class SteinerError(QuestError):
    """Steiner-tree discovery failed (disconnected terminals, empty graph)."""


class CombinationError(QuestError):
    """Dempster-Shafer combination failed (total conflict, empty evidence)."""


class WorkloadError(QuestError):
    """A benchmark workload definition is inconsistent."""


class ServiceError(QuestError):
    """A serving-tier (``repro.service``) operation failed."""


class ServiceOverloadedError(ServiceError):
    """The service shed a request under admission control.

    Raised by :meth:`repro.service.QuestService.search` when every
    execution slot is busy and the waiting queue is full — a fast-fail so
    latency-bounded callers can retry elsewhere instead of queueing
    unboundedly.
    """


class QuotaExceededError(ServiceError):
    """One tenant exhausted its admission quota.

    Raised by the per-tenant quota tier in front of
    :class:`repro.service.QuestService` when a single tenant's in-flight
    requests hit its cap while the service as a whole still has capacity
    — the HTTP front end maps it to 429 (the tenant should back off)
    rather than 503 (the service is overloaded).
    """

    def __init__(self, tenant: str, limit: int) -> None:
        super().__init__(
            f"tenant {tenant!r} exceeded its admission quota "
            f"({limit} concurrent requests)"
        )
        self.tenant = tenant
        self.limit = limit


class DeadlineExceededError(QuestError):
    """A request exhausted its time budget before producing any answer.

    Raised on the search path when a per-request deadline (the
    ``X-Quest-Deadline-Ms`` header or ``QuestSettings.default_deadline_ms``)
    expires while nothing salvageable has been computed yet. When partial
    results *do* exist at expiry, the pipeline returns them with
    ``trace.degraded`` set instead of raising — this error means the
    caller gets nothing, and the HTTP tier maps it to 504.
    """

    def __init__(self, budget_ms: float | None = None) -> None:
        detail = "" if budget_ms is None else f" ({budget_ms:.0f}ms budget)"
        super().__init__(f"request deadline exceeded{detail}")
        self.budget_ms = budget_ms


class CircuitOpenError(QuestError):
    """A circuit breaker refused a call because its circuit is open.

    Raised by :class:`repro.resilience.CircuitBreaker` guarded call sites
    while the breaker is shedding load after repeated failures. Optional
    fast paths (SQL pushdown) treat it as "take the in-process route";
    the serving tier treats it like a storage failure and falls back to
    revision-stale cache entries.
    """

    def __init__(self, name: str) -> None:
        super().__init__(f"circuit {name!r} is open")
        self.name = name


class FaultInjectedError(QuestError):
    """An error deliberately raised by the fault-injection harness.

    Only ever raised when a :class:`repro.faults.FaultPlan` is installed —
    production code paths never construct it themselves. Chaos tests that
    need a *specific* exception type (e.g. ``sqlite3.OperationalError``)
    configure the plan with that type instead.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


class JournalError(QuestError):
    """A write-ahead mutation journal operation failed.

    Raised by :class:`repro.journal.MutationJournal` on misuse (append
    after close, unknown op) — the operational failures, as opposed to
    the on-disk corruption :class:`JournalCorruptError` reports.
    """


class JournalCorruptError(JournalError):
    """A mutation journal holds CRC-valid but unreplayable history.

    A torn *tail* (partial final record after a crash mid-append) is
    expected and silently truncated on open; this error is for the
    unexpected cases — an interior record whose payload is not a
    mutation, or a sequence-number gap — where silently dropping
    acknowledged history would be worse than refusing to start.
    """


class IndexArtifactError(QuestError):
    """A persisted index artifact is unreadable or stale.

    Raised by :meth:`repro.db.fulltext.FullTextIndex.load` when the
    ``.npz`` artifact's catalog header does not describe the live
    database (format, schema, field set, row counts or mutation counter
    mismatch) — a stale index must be rebuilt, never silently served.
    """
