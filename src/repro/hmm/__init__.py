"""Hidden Markov Model machinery for the forward step.

State space over database terms, List Viterbi top-k decoding, scaled
forward-backward, E-M / supervised training (feedback mode) and heuristic
parameter construction (a-priori mode).
"""

from repro.hmm.apriori import AprioriWeights, build_apriori_model
from repro.hmm.em import TrainingReport, baum_welch, supervised_update
from repro.hmm.forward_backward import (
    ForwardBackwardResult,
    forward_backward,
    log_likelihood,
)
from repro.hmm.model import EMISSION_FLOOR, EmissionProvider, HiddenMarkovModel
from repro.hmm.states import State, StateKind, StateSpace
from repro.hmm.viterbi import (
    DecodedPath,
    list_viterbi,
    list_viterbi_reference,
    viterbi,
)

__all__ = [
    "AprioriWeights",
    "DecodedPath",
    "EMISSION_FLOOR",
    "EmissionProvider",
    "ForwardBackwardResult",
    "HiddenMarkovModel",
    "State",
    "StateKind",
    "StateSpace",
    "TrainingReport",
    "baum_welch",
    "build_apriori_model",
    "forward_backward",
    "list_viterbi",
    "list_viterbi_reference",
    "log_likelihood",
    "supervised_update",
    "viterbi",
]
