"""The hidden Markov model over database terms.

The model owns the initial and transition distributions; emissions are
*computed on demand* by an :class:`EmissionProvider` because the observation
alphabet (all possible keywords) cannot be enumerated — the provider scores
a concrete keyword against every state using full-text indexes (full-access
sources) or semantic/shape matching (hidden sources), and the model
normalises those scores into an emission column.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.errors import ModelError
from repro.hmm.states import StateSpace

__all__ = [
    "BatchedEmissionProvider",
    "EmissionProvider",
    "HiddenMarkovModel",
    "EMISSION_FLOOR",
]

#: Smoothing floor so every state can emit every keyword with tiny
#: probability; without it a single unmatched keyword annihilates all paths.
EMISSION_FLOOR = 1e-6


class EmissionProvider(Protocol):
    """Scores one keyword against every state of a state space."""

    def emission_scores(self, keyword: str, states: StateSpace) -> np.ndarray:
        """Non-negative relevance of *keyword* for each state (unnormalised)."""
        ...  # pragma: no cover - protocol


class BatchedEmissionProvider(EmissionProvider, Protocol):
    """A provider that can score a whole observation sequence at once."""

    def emission_matrix(
        self, keywords: Sequence[str], states: StateSpace
    ) -> np.ndarray:
        """Raw ``(T, n)`` scores, rows bit-identical to ``emission_scores``."""
        ...  # pragma: no cover - protocol


class HiddenMarkovModel:
    """A discrete-state HMM with externally computed emissions.

    Attributes:
        states: the state space (one state per database term).
        initial: initial state distribution, shape ``(n,)``.
        transition: row-stochastic transition matrix, shape ``(n, n)``.
    """

    def __init__(
        self,
        states: StateSpace,
        initial: np.ndarray,
        transition: np.ndarray,
    ) -> None:
        n = len(states)
        initial = np.asarray(initial, dtype=float)
        transition = np.asarray(transition, dtype=float)
        if initial.shape != (n,):
            raise ModelError(f"initial shape {initial.shape}, expected ({n},)")
        if transition.shape != (n, n):
            raise ModelError(
                f"transition shape {transition.shape}, expected ({n}, {n})"
            )
        self.states = states
        self.initial = self._normalise_vector(initial)
        self.transition = self._normalise_rows(transition)

    # -- construction helpers ----------------------------------------------

    @staticmethod
    def _normalise_vector(vector: np.ndarray) -> np.ndarray:
        if np.any(vector < 0):
            raise ModelError("negative probability in initial distribution")
        total = vector.sum()
        if total <= 0:
            raise ModelError("initial distribution sums to zero")
        return vector / total

    @staticmethod
    def _normalise_rows(matrix: np.ndarray) -> np.ndarray:
        if np.any(matrix < 0):
            raise ModelError("negative probability in transition matrix")
        sums = matrix.sum(axis=1, keepdims=True)
        if np.any(sums <= 0):
            raise ModelError("transition matrix has an all-zero row")
        return matrix / sums

    @classmethod
    def uniform(cls, states: StateSpace) -> "HiddenMarkovModel":
        """A maximum-entropy model: uniform initial and transitions."""
        n = len(states)
        if n == 0:
            raise ModelError("empty state space")
        return cls(states, np.full(n, 1.0 / n), np.full((n, n), 1.0 / n))

    def copy(self) -> "HiddenMarkovModel":
        """An independent copy (training mutates parameters in place)."""
        return HiddenMarkovModel(
            self.states, self.initial.copy(), self.transition.copy()
        )

    # -- emissions -----------------------------------------------------------

    def emission_matrix(
        self,
        keywords: Sequence[str],
        provider: EmissionProvider,
        batched: bool = True,
    ) -> np.ndarray:
        """Emission probabilities for an observation sequence.

        Returns shape ``(T, n)``: row *t* is the provider's score vector for
        keyword *t*, floored at :data:`EMISSION_FLOOR` and normalised to sum
        to one across states. Normalising per keyword implements the paper's
        setup-phase coefficient: raw search-function scores are turned into
        quantities usable as probabilities.

        With *batched* (the default), a provider exposing ``emission_matrix``
        (see :class:`BatchedEmissionProvider` — the source wrappers do)
        scores the whole sequence in one deduplicated pass; ``batched=False``
        retains the per-keyword reference walk (the
        ``QuestSettings.columnar_index`` flag selects between them).
        Normalisation happens per row in both cases, in the same operation
        order, so the resulting matrices are bit-identical.
        """
        n = len(self.states)
        if not keywords:
            raise ModelError("empty observation sequence")
        batch = getattr(provider, "emission_matrix", None) if batched else None
        if batch is not None:
            raw = np.asarray(batch(keywords, self.states), dtype=float)
            if raw.shape != (len(keywords), n):
                raise ModelError(
                    f"provider returned shape {raw.shape}, "
                    f"expected ({len(keywords)}, {n})"
                )
            if np.any(raw < 0):
                raise ModelError("negative emission score in batched matrix")
            matrix = np.empty((len(keywords), n), dtype=float)
            for t in range(len(keywords)):
                scores = raw[t] + EMISSION_FLOOR
                matrix[t] = scores / scores.sum()
            return matrix
        matrix = np.empty((len(keywords), n), dtype=float)
        for t, keyword in enumerate(keywords):
            scores = np.asarray(provider.emission_scores(keyword, self.states))
            if scores.shape != (n,):
                raise ModelError(
                    f"provider returned shape {scores.shape}, expected ({n},)"
                )
            if np.any(scores < 0):
                raise ModelError(f"negative emission score for {keyword!r}")
            scores = scores + EMISSION_FLOOR
            matrix[t] = scores / scores.sum()
        return matrix

    # -- likelihood -----------------------------------------------------------

    def sequence_log_probability(
        self, state_path: Sequence[int], emissions: np.ndarray
    ) -> float:
        """Joint log P(path, observations) under the model."""
        if len(state_path) != emissions.shape[0]:
            raise ModelError("path and observation lengths differ")
        with np.errstate(divide="ignore"):
            log_initial = np.log(self.initial)
            log_transition = np.log(self.transition)
            log_emissions = np.log(emissions)
        total = log_initial[state_path[0]] + log_emissions[0, state_path[0]]
        for t in range(1, len(state_path)):
            total += log_transition[state_path[t - 1], state_path[t]]
            total += log_emissions[t, state_path[t]]
        return float(total)

    def __repr__(self) -> str:
        return f"HiddenMarkovModel(states={len(self.states)})"
