"""Training the feedback-based HMM.

QUEST's feedback mode learns its parameters from "previous searches
validated by the user" with an on-line Expectation-Maximisation algorithm
(the paper's reference [4], the List Viterbi training algorithm). Two
regimes are implemented:

* :func:`supervised_update` — when feedback pins down the *correct* state
  sequence for a query (the user validated a configuration), parameters are
  updated by smoothed counting; this is the M step with a degenerate
  (observed) E step and is what validated feedback gives us.
* :func:`baum_welch` — classic unsupervised E-M over observation sequences
  alone, used when only queries (not validated mappings) are available.

Both support *online* blending: new sufficient statistics are interpolated
into the current parameters with a learning rate, so the model adapts query
by query as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import TrainingError
from repro.hmm.forward_backward import forward_backward
from repro.hmm.model import EmissionProvider, HiddenMarkovModel

__all__ = ["TrainingReport", "supervised_update", "baum_welch"]


@dataclass(frozen=True)
class TrainingReport:
    """Summary of one training run."""

    iterations: int
    sequences: int
    log_likelihood: float
    converged: bool


def _counts_from_paths(
    n: int, paths: Sequence[Sequence[int]]
) -> tuple[np.ndarray, np.ndarray]:
    """Initial/transition counts from fully observed state sequences."""
    initial_counts = np.zeros(n)
    transition_counts = np.zeros((n, n))
    for path in paths:
        if not path:
            raise TrainingError("empty state path in feedback")
        if any(not 0 <= s < n for s in path):
            raise TrainingError("state index out of range in feedback")
        initial_counts[path[0]] += 1.0
        for previous, current in zip(path, path[1:]):
            transition_counts[previous, current] += 1.0
    return initial_counts, transition_counts


def supervised_update(
    model: HiddenMarkovModel,
    paths: Sequence[Sequence[int]],
    learning_rate: float = 1.0,
    smoothing: float = 1e-3,
) -> HiddenMarkovModel:
    """Update *model* from validated state sequences (returns a new model).

    With ``learning_rate=1`` the parameters are re-estimated from the
    feedback alone (batch); smaller rates blend the new estimates into the
    old parameters, implementing on-line adaptation:
    ``θ ← (1 - η) θ_old + η θ_feedback``.
    """
    if not paths:
        raise TrainingError("no feedback sequences")
    if not 0.0 < learning_rate <= 1.0:
        raise TrainingError(f"learning rate must be in (0, 1], got {learning_rate}")
    n = len(model.states)
    initial_counts, transition_counts = _counts_from_paths(n, paths)

    new_initial = initial_counts + smoothing
    new_initial /= new_initial.sum()
    new_transition = transition_counts + smoothing
    new_transition /= new_transition.sum(axis=1, keepdims=True)

    blended_initial = (1 - learning_rate) * model.initial + learning_rate * new_initial
    blended_transition = (
        (1 - learning_rate) * model.transition + learning_rate * new_transition
    )
    return HiddenMarkovModel(model.states, blended_initial, blended_transition)


def baum_welch(
    model: HiddenMarkovModel,
    observation_sequences: Sequence[Sequence[str]],
    provider: EmissionProvider,
    max_iterations: int = 25,
    tolerance: float = 1e-4,
    smoothing: float = 1e-3,
) -> tuple[HiddenMarkovModel, TrainingReport]:
    """Unsupervised E-M over keyword sequences (returns model + report).

    Emissions are recomputed from the provider and held fixed — only the
    initial and transition distributions are re-estimated, matching QUEST
    where emissions come from the source's search function rather than from
    a learned observation model.
    """
    if not observation_sequences:
        raise TrainingError("no observation sequences")
    current = model.copy()
    emission_matrices = [
        current.emission_matrix(list(sequence), provider)
        for sequence in observation_sequences
    ]

    previous_total = float("-inf")
    iterations = 0
    converged = False
    total = previous_total
    for iterations in range(1, max_iterations + 1):
        n = len(current.states)
        initial_acc = np.zeros(n)
        transition_acc = np.zeros((n, n))
        total = 0.0
        for emissions in emission_matrices:
            result = forward_backward(current, emissions)
            initial_acc += result.gamma[0]
            transition_acc += result.xi
            total += result.log_likelihood

        new_initial = initial_acc + smoothing
        new_transition = transition_acc + smoothing
        current = HiddenMarkovModel(current.states, new_initial, new_transition)

        if total - previous_total < tolerance and iterations > 1:
            converged = True
            break
        previous_total = total

    report = TrainingReport(
        iterations=iterations,
        sequences=len(observation_sequences),
        log_likelihood=total,
        converged=converged,
    )
    return current, report
