"""The HMM state space: one state per database term.

The forward step models keyword-to-schema mapping as a hidden process whose
states are *database terms*: for every table there is a TABLE state (the
keyword names the table), for every attribute an ATTRIBUTE state (the
keyword names the column) and a DOMAIN state (the keyword is a *value* of
that column). A decoded state sequence is exactly a configuration: an
assignment of every keyword to a database term.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.db.schema import ColumnRef, Schema

__all__ = ["StateKind", "State", "StateSpace"]


class StateKind(enum.Enum):
    """What a keyword mapped to this state refers to."""

    TABLE = "table"  # the table name itself ("movies")
    ATTRIBUTE = "attribute"  # a column name ("title")
    DOMAIN = "domain"  # a value of a column ("kubrick" in person.name)

    @property
    def is_schema_term(self) -> bool:
        """Whether the state names schema vocabulary rather than data."""
        return self is not StateKind.DOMAIN


@dataclass(frozen=True)
class State:
    """One database term: a table, an attribute, or an attribute domain."""

    kind: StateKind
    table: str
    column: str | None = None

    def __post_init__(self) -> None:
        if self.kind is StateKind.TABLE and self.column is not None:
            raise ValueError("TABLE states carry no column")
        if self.kind is not StateKind.TABLE and self.column is None:
            raise ValueError(f"{self.kind.value} states need a column")

    @property
    def column_ref(self) -> ColumnRef | None:
        """Qualified column for ATTRIBUTE/DOMAIN states, ``None`` for TABLE."""
        if self.column is None:
            return None
        return ColumnRef(self.table, self.column)

    def __str__(self) -> str:
        if self.kind is StateKind.TABLE:
            return f"table:{self.table}"
        return f"{self.kind.value}:{self.table}.{self.column}"


class StateSpace:
    """The ordered set of states derived from a schema.

    Order is deterministic (schema declaration order) so state indexes are
    stable across runs — transition matrices, training checkpoints and test
    expectations all rely on that.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        states: list[State] = []
        for table in schema.tables:
            states.append(State(StateKind.TABLE, table.name))
            for column in table.columns:
                states.append(State(StateKind.ATTRIBUTE, table.name, column.name))
                states.append(State(StateKind.DOMAIN, table.name, column.name))
        self._states: tuple[State, ...] = tuple(states)
        self._index: dict[State, int] = {
            state: position for position, state in enumerate(states)
        }

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self):
        return iter(self._states)

    def __getitem__(self, position: int) -> State:
        return self._states[position]

    def index(self, state: State) -> int:
        """Position of *state* in the space (raises ``KeyError`` if absent)."""
        return self._index[state]

    def __contains__(self, state: State) -> bool:
        return state in self._index

    @property
    def states(self) -> tuple[State, ...]:
        """All states in canonical order."""
        return self._states

    def states_of_table(self, table: str) -> list[State]:
        """All states whose term belongs to *table*."""
        return [state for state in self._states if state.table == table]

    def domain_states(self) -> list[State]:
        """All DOMAIN states."""
        return [s for s in self._states if s.kind is StateKind.DOMAIN]

    def table_state(self, table: str) -> State:
        """The TABLE state of *table*."""
        return self._states[self._index[State(StateKind.TABLE, table)]]

    def attribute_state(self, table: str, column: str) -> State:
        """The ATTRIBUTE state of ``table.column``."""
        return self._states[self._index[State(StateKind.ATTRIBUTE, table, column)]]

    def domain_state(self, table: str, column: str) -> State:
        """The DOMAIN state of ``table.column``."""
        return self._states[self._index[State(StateKind.DOMAIN, table, column)]]

    def __repr__(self) -> str:
        return f"StateSpace(schema={self.schema.name!r}, states={len(self)})"
