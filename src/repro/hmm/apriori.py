"""A-priori HMM parameters from schema semantics (no training data).

The a-priori operating mode derives the transition and initial
distributions from heuristic rules over the semantic relationships among
database terms (the paper's reference [2]): *aggregation* (an attribute
belongs to a table), *generalisation/inclusion* (primary/foreign key links)
and co-membership in a table. The rules "foster the transition between
database terms belonging to the same table and belonging to tables
connected through foreign keys". No user feedback is involved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.schema import Schema
from repro.hmm.model import HiddenMarkovModel
from repro.hmm.states import StateKind, StateSpace

__all__ = ["AprioriWeights", "build_apriori_model"]


@dataclass(frozen=True)
class AprioriWeights:
    """Relative transition affinities used by the heuristic rules.

    These are *odds*, not probabilities: each transition-matrix row collects
    the affinity of every target state and is then normalised. The defaults
    encode the paper's preference ordering; benchmarks vary them to show the
    a-priori mode's sensitivity.
    """

    #: ATTRIBUTE -> DOMAIN of the same column (e.g. "title" then "Odyssey").
    attribute_to_own_domain: float = 8.0
    #: TABLE -> any term of the same table ("movie" then "title").
    table_to_member: float = 7.0
    #: any two terms of the same table (aggregation relationship).
    same_table: float = 5.0
    #: terms of the FK endpoint columns themselves (inclusion relationship).
    #: Kept at the adjacency level: boosting endpoints above it makes the
    #: decoder prefer junction foreign-key columns over the entity tables
    #: they reference, which is rarely what a keyword means.
    fk_endpoint: float = 3.0
    #: terms of two tables connected by a foreign key.
    fk_adjacent_tables: float = 3.0
    #: terms of two entity tables connected through a junction table (a
    #: table whose primary key is made entirely of foreign-key columns):
    #: m:n-related entities are as semantically close as directly joined
    #: ones, even though the schema path between them is two hops.
    junction_linked_tables: float = 3.0
    #: staying on the same term twice in a row (multi-keyword values).
    self_loop: float = 2.0
    #: every other pair (smoothing so all paths stay possible).
    default: float = 0.1
    #: initial-distribution boosts by state kind.
    initial_domain_boost: float = 2.0
    initial_table_boost: float = 1.5
    initial_attribute_boost: float = 1.0


def build_apriori_model(
    schema: Schema,
    states: StateSpace | None = None,
    weights: AprioriWeights | None = None,
) -> HiddenMarkovModel:
    """Build the a-priori HMM for *schema*.

    Args:
        schema: the database schema.
        states: a prebuilt state space (built from the schema if omitted).
        weights: heuristic affinities (defaults otherwise).

    Returns:
        A normalised :class:`HiddenMarkovModel` ready for List Viterbi.
    """
    if states is None:
        states = StateSpace(schema)
    if weights is None:
        weights = AprioriWeights()
    n = len(states)

    adjacency: dict[str, set[str]] = {
        table.name: schema.adjacent_tables(table.name) for table in schema.tables
    }
    fk_columns: set[tuple[str, str]] = set()
    for fk in schema.foreign_keys:
        fk_columns.add((fk.table, fk.column))
        fk_columns.add((fk.ref_table, fk.ref_column))

    # Junction tables: every primary-key column is a foreign-key source.
    # Tables joined through one (classic m:n) count as semantically linked.
    fk_sources = {(fk.table, fk.column) for fk in schema.foreign_keys}
    junction_linked: dict[str, set[str]] = {t.name: set() for t in schema.tables}
    for table in schema.tables:
        is_junction = all(
            (table.name, key_column) in fk_sources
            for key_column in table.primary_key
        )
        if not is_junction:
            continue
        endpoints = {
            fk.ref_table
            for fk in schema.foreign_keys_of(table.name)
            if fk.column in table.primary_key
        }
        for left in endpoints:
            for right in endpoints:
                if left != right:
                    junction_linked[left].add(right)

    transition = np.full((n, n), weights.default, dtype=float)
    for i, source in enumerate(states):
        for j, target in enumerate(states):
            if i == j:
                transition[i, j] = max(weights.self_loop, weights.default)
                continue
            affinity = weights.default
            if source.table == target.table:
                affinity = max(affinity, weights.same_table)
                if source.kind is StateKind.TABLE:
                    affinity = max(affinity, weights.table_to_member)
                if (
                    source.kind is StateKind.ATTRIBUTE
                    and target.kind is StateKind.DOMAIN
                    and source.column == target.column
                ):
                    affinity = max(affinity, weights.attribute_to_own_domain)
            elif target.table in adjacency.get(source.table, ()):
                affinity = max(affinity, weights.fk_adjacent_tables)
                source_is_endpoint = (
                    source.column is not None
                    and (source.table, source.column) in fk_columns
                )
                target_is_endpoint = (
                    target.column is not None
                    and (target.table, target.column) in fk_columns
                )
                if source_is_endpoint and target_is_endpoint:
                    affinity = max(affinity, weights.fk_endpoint)
            elif target.table in junction_linked.get(source.table, ()):
                affinity = max(affinity, weights.junction_linked_tables)
            transition[i, j] = affinity

    initial = np.empty(n, dtype=float)
    boosts = {
        StateKind.DOMAIN: weights.initial_domain_boost,
        StateKind.TABLE: weights.initial_table_boost,
        StateKind.ATTRIBUTE: weights.initial_attribute_boost,
    }
    for i, state in enumerate(states):
        initial[i] = boosts[state.kind]

    return HiddenMarkovModel(states, initial, transition)
