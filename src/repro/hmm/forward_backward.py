"""Scaled forward-backward recursions for the HMM.

Used by Baum-Welch (E step) and to compute observation likelihoods. The
standard scaling trick keeps the recursions in floating range for long
sequences: each forward column is normalised and the scale factors are kept
to reconstruct the log-likelihood.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.hmm.model import HiddenMarkovModel

__all__ = ["ForwardBackwardResult", "forward_backward", "log_likelihood"]


@dataclass(frozen=True)
class ForwardBackwardResult:
    """Outputs of one forward-backward pass.

    Attributes:
        alpha: scaled forward variables, shape ``(T, n)``.
        beta: scaled backward variables, shape ``(T, n)``.
        gamma: posterior state marginals P(state_t = s | obs), ``(T, n)``.
        xi: posterior transition marginals summed over time, ``(n, n)``:
            ``xi[r, s] = Σ_t P(state_t = r, state_{t+1} = s | obs)``.
        log_likelihood: log P(observations) under the model.
    """

    alpha: np.ndarray
    beta: np.ndarray
    gamma: np.ndarray
    xi: np.ndarray
    log_likelihood: float


def forward_backward(
    model: HiddenMarkovModel, emissions: np.ndarray
) -> ForwardBackwardResult:
    """Run the scaled forward-backward algorithm on one sequence."""
    T, n = emissions.shape
    if n != len(model.states):
        raise ModelError("emission width does not match the state space")
    transition = model.transition

    alpha = np.zeros((T, n))
    scales = np.zeros(T)

    alpha[0] = model.initial * emissions[0]
    scales[0] = alpha[0].sum()
    if scales[0] <= 0:
        raise ModelError("observation sequence has zero probability at t=0")
    alpha[0] /= scales[0]

    for t in range(1, T):
        alpha[t] = (alpha[t - 1] @ transition) * emissions[t]
        scales[t] = alpha[t].sum()
        if scales[t] <= 0:
            raise ModelError(f"observation sequence has zero probability at t={t}")
        alpha[t] /= scales[t]

    beta = np.zeros((T, n))
    beta[T - 1] = 1.0
    for t in range(T - 2, -1, -1):
        beta[t] = transition @ (emissions[t + 1] * beta[t + 1])
        beta[t] /= scales[t + 1]

    gamma = alpha * beta
    gamma /= gamma.sum(axis=1, keepdims=True)

    xi = np.zeros((n, n))
    for t in range(T - 1):
        local = (
            alpha[t][:, None]
            * transition
            * (emissions[t + 1] * beta[t + 1])[None, :]
        )
        total = local.sum()
        if total > 0:
            xi += local / total

    return ForwardBackwardResult(
        alpha=alpha,
        beta=beta,
        gamma=gamma,
        xi=xi,
        log_likelihood=float(np.log(scales).sum()),
    )


def log_likelihood(model: HiddenMarkovModel, emissions: np.ndarray) -> float:
    """log P(observations) under *model* (forward pass only)."""
    return forward_backward(model, emissions).log_likelihood
