"""Viterbi and List Viterbi decoding.

The List Viterbi Algorithm (Seshadri & Sundberg, IEEE Trans. Comm. 1994 —
the paper's reference [5]) generalises Viterbi to produce the *top-k* state
sequences for an observation sequence. QUEST uses it to enumerate the top-k
configurations with their confidence values. We implement the *parallel*
LVA: dynamic programming where every (time, state) cell keeps its k best
partial paths.

Two implementations share one contract and return identical results:

``list_viterbi_reference``
    The per-cell heap formulation: every ``(time, state)`` cell holds up to
    ``k`` ``(log-probability, path-tuple)`` entries, extended predecessor by
    predecessor in pure Python. Retained as the executable specification
    and exercised by the ``tests/perf`` parity suite.

``list_viterbi`` (vectorised, the default)
    The same dynamic program over numpy ``(n, k)`` score tensors and
    ``(T, n, k)`` backpointer tensors: each step broadcasts every
    predecessor cell against the transition matrix at once and selects each
    cell's k-best with a partition-bounded stable sort, so the
    per-candidate Python loop (and its path-tuple allocations) disappears.
    Scores are bit-identical — the float additions happen in the same
    association order — and ties on equal log-probabilities are resolved
    exactly like the reference (selection keeps generation order, output
    sorts tied paths lexicographically) by maintaining a per-entry
    *lexicographic rank* inductively instead of materialising path tuples:
    a path is the predecessor's path plus one state, so comparing
    (predecessor rank, state) pairs compares full paths. Paths are
    reconstructed from backpointers only for the k sequences returned.
    Disable per call with ``vectorized=False`` or engine-wide with
    ``QuestSettings.vectorized_viterbi``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.hmm.model import HiddenMarkovModel

__all__ = ["DecodedPath", "viterbi", "list_viterbi", "list_viterbi_reference"]

_NEG_INF = float("-inf")


@dataclass(frozen=True, slots=True)
class DecodedPath:
    """One decoded state sequence with its joint log-probability."""

    states: tuple[int, ...]
    log_probability: float

    @property
    def probability(self) -> float:
        """The joint probability (may underflow to 0.0 for long sequences)."""
        return float(np.exp(self.log_probability))


def _log(array: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore"):
        return np.log(array)


def viterbi(model: HiddenMarkovModel, emissions: np.ndarray) -> DecodedPath:
    """The single most likely state sequence (classic Viterbi)."""
    paths = list_viterbi(model, emissions, k=1)
    return paths[0]


def _check_inputs(
    model: HiddenMarkovModel, emissions: np.ndarray, k: int
) -> tuple[int, int]:
    if k <= 0:
        raise ModelError(f"k must be positive, got {k}")
    T, n = emissions.shape
    if n != len(model.states):
        raise ModelError("emission width does not match the state space")
    return T, n


def _stable_topk_rows(candidates: np.ndarray, k: int) -> np.ndarray:
    """Per-row indices of the k best candidates, stable-descending.

    Equivalent to ``np.argsort(-candidates, axis=1, kind="stable")[:, :k]``
    — among equal scores, lower candidate indices (generation order) win —
    but computed with ``np.partition``: the per-row k-th value bounds the
    survivors (at least k per row by construction), and one flat
    three-key sort of the survivors by (row, descending score, ascending
    index) reproduces the stable order; the first k of each row block are
    the selection.
    """
    n, m = candidates.shape
    if m <= k:
        return np.argsort(-candidates, axis=1, kind="stable")
    cutoffs = np.partition(candidates, m - k, axis=1)[:, m - k]
    rows, cols = np.nonzero(candidates >= cutoffs[:, None])
    values = candidates[rows, cols]
    order = np.lexsort((cols, -values, rows))
    starts = np.searchsorted(rows[order], np.arange(n))
    return cols[order[(starts[:, None] + np.arange(k)).ravel()]].reshape(n, k)


def list_viterbi(
    model: HiddenMarkovModel,
    emissions: np.ndarray,
    k: int,
    vectorized: bool = True,
) -> list[DecodedPath]:
    """Top-*k* most likely state sequences (parallel List Viterbi).

    Args:
        model: the HMM supplying initial and transition distributions.
        emissions: shape ``(T, n)`` emission probabilities (see
            :meth:`HiddenMarkovModel.emission_matrix`).
        k: number of sequences to return (fewer if the model admits fewer
            paths with non-zero probability).
        vectorized: run the numpy tensor kernel (the default); ``False``
            falls back to :func:`list_viterbi_reference`.

    Returns:
        Decoded paths sorted by descending log-probability. Ties break on
        the state tuple for determinism.
    """
    if not vectorized:
        return list_viterbi_reference(model, emissions, k)
    T, n = _check_inputs(model, emissions, k)

    log_initial = _log(model.initial)
    log_transition = _log(model.transition)
    log_emissions = _log(emissions)

    # scores[s, j]: log-probability of cell s's j-th ranked partial path
    # (-inf marks an empty slot). Slot 0 of the first step is the only
    # occupied rank: one path per state.
    scores = np.full((n, k), _NEG_INF)
    scores[:, 0] = log_initial + log_emissions[0]
    # Backpointers for t >= 1: entry (t, s, j) extends the partial path at
    # cell (t-1, bp_state[t, s, j]) rank bp_rank[t, s, j] by state s.
    bp_state = np.zeros((T, n, k), dtype=np.int32)
    bp_rank = np.zeros((T, n, k), dtype=np.int32)
    # lexrank[s, j]: position of entry (s, j)'s path in the lexicographic
    # order over ALL current entries. Every occupied entry holds a
    # distinct path (within a cell, entries extend distinct predecessor
    # entries; across cells, paths differ in their last state), so this
    # is a strict total order — equal-score ties are resolved by
    # comparing these integers instead of materialised path tuples.
    # Inductive invariant: path(a) < path(b) iff, comparing their
    # predecessor ranks first and their own states second,
    # (lexrank'[pred(a)], state(a)) < (lexrank'[pred(b)], state(b)).
    lexrank = np.full((n, k), n * k, dtype=np.int64)
    lexrank[:, 0] = np.arange(n)  # t = 0: the path (s,) sorts by s
    row_states = np.repeat(np.arange(n), k)  # state of each flat (s, j) slot

    def path_of(t: int, s: int, j: int) -> tuple[int, ...]:
        """Reconstruct the state tuple of entry (t, s, j) from backpointers."""
        reverse = []
        while t > 0:
            reverse.append(s)
            s, j = int(bp_state[t, s, j]), int(bp_rank[t, s, j])
            t -= 1
        reverse.append(s)
        return tuple(reversed(reverse))

    for t in range(1, T):
        # Only occupied predecessor entries generate candidates (at the
        # first step that is one per state, a 30x narrower matrix than
        # the full (n, n*k)); flatnonzero of the row-major scores yields
        # them exactly in the reference's generation order (r ascending,
        # rank ascending).
        occupied = np.flatnonzero(scores.reshape(-1) > _NEG_INF)
        if occupied.size == 0:
            return []
        occupied_state = occupied // k
        occupied_rank = occupied % k
        # candidates[s, j] = scores[r_j, i_j] + transition[r_j, s] + emit.
        # IEEE addition commutes bit-exactly, so the target-major
        # `(step + logp) + emit` equals the reference's
        # `(logp + step) + emit` float for float.
        candidates = (
            log_transition.T[:, occupied_state]
            + scores.reshape(-1)[occupied][None, :]
        ) + log_emissions[t][:, None]
        # Stable descending selection = heapq.nlargest over candidates in
        # generation order: among equal scores the first-generated
        # survive, exactly like the reference.
        width = min(k, occupied.size)
        order = _stable_topk_rows(candidates, k)[:, :width]
        selected = np.take_along_axis(candidates, order, axis=1)
        pred_state = occupied_state[order]
        pred_ranks = occupied_rank[order]
        # The reference sorts each cell by (-logp, path): among the
        # selected equal scores, paths ascend lexicographically — which,
        # within one cell (same final state), is exactly ascending
        # predecessor lexrank. One flat three-key sort applies it to
        # every cell at once.
        pred_lex = lexrank.reshape(-1)[occupied][order]
        flat_rows = (
            row_states if width == k else np.repeat(np.arange(n), width)
        )
        resort = np.lexsort((pred_lex.ravel(), -selected.ravel(), flat_rows))
        scores = np.full((n, k), _NEG_INF)
        scores[:, :width] = selected.ravel()[resort].reshape(n, width)
        bp_state[t, :, :width] = pred_state.ravel()[resort].reshape(n, width)
        bp_rank[t, :, :width] = pred_ranks.ravel()[resort].reshape(n, width)
        # Re-rank for the next step: order every entry by (predecessor
        # path, own state); empty slots key past every real path.
        keys = np.full(n * k, np.iinfo(np.int64).max)
        filled = (
            np.arange(n)[:, None] * k + np.arange(width)[None, :]
        ).ravel()
        keys[filled] = np.where(
            scores.reshape(-1)[filled] > _NEG_INF,
            pred_lex.ravel()[resort] * n + flat_rows,
            np.iinfo(np.int64).max,
        )
        flat_order = np.argsort(keys, kind="stable")
        lexrank = np.empty(n * k, dtype=np.int64)
        lexrank[flat_order] = np.arange(n * k)
        lexrank = lexrank.reshape(n, k)

    # Final ranking over every occupied cell entry: the reference sorts all
    # of them by (-logp, path) — here (-logp, lexrank) — and keeps k.
    flat = scores.reshape(-1)
    ranked = np.lexsort((lexrank.reshape(-1), -flat))
    ranked = ranked[flat[ranked] > _NEG_INF][:k]
    return [
        DecodedPath(
            states=path_of(T - 1, int(idx) // k, int(idx) % k),
            log_probability=float(flat[idx]),
        )
        for idx in ranked
    ]


def list_viterbi_reference(
    model: HiddenMarkovModel, emissions: np.ndarray, k: int
) -> list[DecodedPath]:
    """The pure-Python parallel LVA (executable specification).

    Kept verbatim as the parity oracle for the vectorised kernel; see the
    module docstring. Semantics are identical to :func:`list_viterbi`.
    """
    T, n = _check_inputs(model, emissions, k)

    log_initial = _log(model.initial)
    log_transition = _log(model.transition)
    log_emissions = _log(emissions)

    # cell[t][s] = up to k tuples (logp, path) sorted descending.
    previous: list[list[tuple[float, tuple[int, ...]]]] = [
        [(float(log_initial[s] + log_emissions[0, s]), (s,))]
        if log_initial[s] + log_emissions[0, s] > _NEG_INF
        else []
        for s in range(n)
    ]

    for t in range(1, T):
        current: list[list[tuple[float, tuple[int, ...]]]] = []
        for s in range(n):
            emit = log_emissions[t, s]
            if emit == _NEG_INF:
                current.append([])
                continue
            # Gather candidate extensions from every predecessor's list.
            candidates: list[tuple[float, tuple[int, ...]]] = []
            for r in range(n):
                step = log_transition[r, s]
                if step == _NEG_INF or not previous[r]:
                    continue
                for logp, path in previous[r]:
                    candidates.append((logp + step + emit, path + (s,)))
            if len(candidates) > k:
                candidates = heapq.nlargest(k, candidates, key=lambda c: c[0])
            candidates.sort(key=lambda c: (-c[0], c[1]))
            current.append(candidates[:k])
        previous = current

    finals = [entry for cell in previous for entry in cell]
    finals.sort(key=lambda c: (-c[0], c[1]))
    return [
        DecodedPath(states=path, log_probability=logp) for logp, path in finals[:k]
    ]
