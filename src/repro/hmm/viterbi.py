"""Viterbi and List Viterbi decoding.

The List Viterbi Algorithm (Seshadri & Sundberg, IEEE Trans. Comm. 1994 —
the paper's reference [5]) generalises Viterbi to produce the *top-k* state
sequences for an observation sequence. QUEST uses it to enumerate the top-k
configurations with their confidence values. We implement the *parallel*
LVA: dynamic programming where every (time, state) cell keeps its k best
partial paths.

Two implementations share one contract and return identical results:

``list_viterbi_reference``
    The per-cell heap formulation: every ``(time, state)`` cell holds up to
    ``k`` ``(log-probability, path-tuple)`` entries, extended predecessor by
    predecessor in pure Python. Retained as the executable specification
    and exercised by the ``tests/perf`` parity suite.

``list_viterbi`` (vectorised, the default)
    The same dynamic program over numpy ``(n, k)`` score tensors and
    ``(T, n, k)`` backpointer tensors: each step broadcasts every
    predecessor cell against the transition matrix at once and selects each
    cell's k-best by a stable argsort, so the per-candidate Python loop (and
    its path-tuple allocations) disappears. Scores are bit-identical — the
    float additions happen in the same association order — and ties on
    equal log-probabilities are resolved exactly like the reference
    (selection keeps generation order, output sorts tied paths
    lexicographically), reconstructing paths from backpointers only for the
    tied entries. Disable per call with ``vectorized=False`` or engine-wide
    with ``QuestSettings.vectorized_viterbi``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.hmm.model import HiddenMarkovModel

__all__ = ["DecodedPath", "viterbi", "list_viterbi", "list_viterbi_reference"]

_NEG_INF = float("-inf")


@dataclass(frozen=True, slots=True)
class DecodedPath:
    """One decoded state sequence with its joint log-probability."""

    states: tuple[int, ...]
    log_probability: float

    @property
    def probability(self) -> float:
        """The joint probability (may underflow to 0.0 for long sequences)."""
        return float(np.exp(self.log_probability))


def _log(array: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore"):
        return np.log(array)


def viterbi(model: HiddenMarkovModel, emissions: np.ndarray) -> DecodedPath:
    """The single most likely state sequence (classic Viterbi)."""
    paths = list_viterbi(model, emissions, k=1)
    return paths[0]


def _check_inputs(
    model: HiddenMarkovModel, emissions: np.ndarray, k: int
) -> tuple[int, int]:
    if k <= 0:
        raise ModelError(f"k must be positive, got {k}")
    T, n = emissions.shape
    if n != len(model.states):
        raise ModelError("emission width does not match the state space")
    return T, n


def list_viterbi(
    model: HiddenMarkovModel,
    emissions: np.ndarray,
    k: int,
    vectorized: bool = True,
) -> list[DecodedPath]:
    """Top-*k* most likely state sequences (parallel List Viterbi).

    Args:
        model: the HMM supplying initial and transition distributions.
        emissions: shape ``(T, n)`` emission probabilities (see
            :meth:`HiddenMarkovModel.emission_matrix`).
        k: number of sequences to return (fewer if the model admits fewer
            paths with non-zero probability).
        vectorized: run the numpy tensor kernel (the default); ``False``
            falls back to :func:`list_viterbi_reference`.

    Returns:
        Decoded paths sorted by descending log-probability. Ties break on
        the state tuple for determinism.
    """
    if not vectorized:
        return list_viterbi_reference(model, emissions, k)
    T, n = _check_inputs(model, emissions, k)

    log_initial = _log(model.initial)
    log_transition = _log(model.transition)
    log_emissions = _log(emissions)

    # scores[s, j]: log-probability of cell s's j-th ranked partial path
    # (-inf marks an empty slot). Slot 0 of the first step is the only
    # occupied rank: one path per state.
    scores = np.full((n, k), _NEG_INF)
    scores[:, 0] = log_initial + log_emissions[0]
    # Backpointers for t >= 1: entry (t, s, j) extends the partial path at
    # cell (t-1, bp_state[t, s, j]) rank bp_rank[t, s, j] by state s.
    bp_state = np.zeros((T, n, k), dtype=np.int32)
    bp_rank = np.zeros((T, n, k), dtype=np.int32)

    def path_of(t: int, s: int, j: int) -> tuple[int, ...]:
        """Reconstruct the state tuple of entry (t, s, j) from backpointers."""
        reverse = []
        while t > 0:
            reverse.append(s)
            s, j = int(bp_state[t, s, j]), int(bp_rank[t, s, j])
            t -= 1
        reverse.append(s)
        return tuple(reversed(reverse))

    for t in range(1, T):
        # candidates[s, r * k + i] = scores[r, i] + transition[r, s] + emit.
        # The association order matches the reference's `logp + step + emit`
        # so every float is bit-identical.
        candidates = (
            scores[:, None, :] + log_transition[:, :, None]
        ) + log_emissions[t][None, :, None]
        candidates = candidates.transpose(1, 0, 2).reshape(n, n * k)
        # Stable descending sort = heapq.nlargest over candidates in
        # generation order (r ascending, rank ascending): equal scores keep
        # their generation order, exactly like the reference's selection.
        order = np.argsort(-candidates, axis=1, kind="stable")[:, :k]
        scores = np.take_along_axis(candidates, order, axis=1)
        bp_state[t] = order // k
        bp_rank[t] = order % k
        # The reference sorts each cell by (-logp, path): among equal
        # scores, paths ascend lexicographically. The stable selection
        # already orders same-predecessor ties correctly (predecessor cells
        # are path-sorted inductively), so only cells with ties need the
        # explicit path comparison.
        tied = np.nonzero(
            (scores[:, :-1] == scores[:, 1:]) & (scores[:, :-1] > _NEG_INF)
        )[0]
        for s in np.unique(tied):
            row = scores[s]
            j = 0
            while j < k - 1:
                end = j + 1
                while end < k and row[end] == row[j] and row[j] > _NEG_INF:
                    end += 1
                if end - j > 1:
                    group = sorted(
                        range(j, end),
                        key=lambda idx: path_of(
                            t - 1, int(bp_state[t, s, idx]), int(bp_rank[t, s, idx])
                        ),
                    )
                    bp_state[t, s, j:end] = bp_state[t, s, group]
                    bp_rank[t, s, j:end] = bp_rank[t, s, group]
                j = end

    # Final ranking over every occupied cell entry: the reference sorts all
    # of them by (-logp, path). Select the k best by score (plus everything
    # tied with the k-th) and let the path tuples order the ties.
    flat = scores.reshape(-1)
    finite = np.nonzero(flat > _NEG_INF)[0]
    if finite.size == 0:
        return []
    ranked = finite[np.argsort(-flat[finite], kind="stable")]
    if ranked.size > k:
        cutoff = flat[ranked[k - 1]]
        keep = int(np.searchsorted(-flat[ranked], -cutoff, side="right"))
        ranked = ranked[:keep]
    finals = [
        (float(flat[idx]), path_of(T - 1, int(idx) // k, int(idx) % k))
        for idx in ranked
    ]
    finals.sort(key=lambda c: (-c[0], c[1]))
    return [
        DecodedPath(states=path, log_probability=logp) for logp, path in finals[:k]
    ]


def list_viterbi_reference(
    model: HiddenMarkovModel, emissions: np.ndarray, k: int
) -> list[DecodedPath]:
    """The pure-Python parallel LVA (executable specification).

    Kept verbatim as the parity oracle for the vectorised kernel; see the
    module docstring. Semantics are identical to :func:`list_viterbi`.
    """
    T, n = _check_inputs(model, emissions, k)

    log_initial = _log(model.initial)
    log_transition = _log(model.transition)
    log_emissions = _log(emissions)

    # cell[t][s] = up to k tuples (logp, path) sorted descending.
    previous: list[list[tuple[float, tuple[int, ...]]]] = [
        [(float(log_initial[s] + log_emissions[0, s]), (s,))]
        if log_initial[s] + log_emissions[0, s] > _NEG_INF
        else []
        for s in range(n)
    ]

    for t in range(1, T):
        current: list[list[tuple[float, tuple[int, ...]]]] = []
        for s in range(n):
            emit = log_emissions[t, s]
            if emit == _NEG_INF:
                current.append([])
                continue
            # Gather candidate extensions from every predecessor's list.
            candidates: list[tuple[float, tuple[int, ...]]] = []
            for r in range(n):
                step = log_transition[r, s]
                if step == _NEG_INF or not previous[r]:
                    continue
                for logp, path in previous[r]:
                    candidates.append((logp + step + emit, path + (s,)))
            if len(candidates) > k:
                candidates = heapq.nlargest(k, candidates, key=lambda c: c[0])
            candidates.sort(key=lambda c: (-c[0], c[1]))
            current.append(candidates[:k])
        previous = current

    finals = [entry for cell in previous for entry in cell]
    finals.sort(key=lambda c: (-c[0], c[1]))
    return [
        DecodedPath(states=path, log_probability=logp) for logp, path in finals[:k]
    ]
