"""Viterbi and List Viterbi decoding.

The List Viterbi Algorithm (Seshadri & Sundberg, IEEE Trans. Comm. 1994 —
the paper's reference [5]) generalises Viterbi to produce the *top-k* state
sequences for an observation sequence. QUEST uses it to enumerate the top-k
configurations with their confidence values. We implement the *parallel*
LVA: dynamic programming where every (time, state) cell keeps its k best
partial paths.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.hmm.model import HiddenMarkovModel

__all__ = ["DecodedPath", "viterbi", "list_viterbi"]

_NEG_INF = float("-inf")


@dataclass(frozen=True)
class DecodedPath:
    """One decoded state sequence with its joint log-probability."""

    states: tuple[int, ...]
    log_probability: float

    @property
    def probability(self) -> float:
        """The joint probability (may underflow to 0.0 for long sequences)."""
        return float(np.exp(self.log_probability))


def _log(array: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore"):
        return np.log(array)


def viterbi(model: HiddenMarkovModel, emissions: np.ndarray) -> DecodedPath:
    """The single most likely state sequence (classic Viterbi)."""
    paths = list_viterbi(model, emissions, k=1)
    return paths[0]


def list_viterbi(
    model: HiddenMarkovModel, emissions: np.ndarray, k: int
) -> list[DecodedPath]:
    """Top-*k* most likely state sequences (parallel List Viterbi).

    Args:
        model: the HMM supplying initial and transition distributions.
        emissions: shape ``(T, n)`` emission probabilities (see
            :meth:`HiddenMarkovModel.emission_matrix`).
        k: number of sequences to return (fewer if the model admits fewer
            paths with non-zero probability).

    Returns:
        Decoded paths sorted by descending log-probability. Ties break on
        the state tuple for determinism.
    """
    if k <= 0:
        raise ModelError(f"k must be positive, got {k}")
    T, n = emissions.shape
    if n != len(model.states):
        raise ModelError("emission width does not match the state space")

    log_initial = _log(model.initial)
    log_transition = _log(model.transition)
    log_emissions = _log(emissions)

    # cell[t][s] = up to k tuples (logp, path) sorted descending.
    previous: list[list[tuple[float, tuple[int, ...]]]] = [
        [(float(log_initial[s] + log_emissions[0, s]), (s,))]
        if log_initial[s] + log_emissions[0, s] > _NEG_INF
        else []
        for s in range(n)
    ]

    for t in range(1, T):
        current: list[list[tuple[float, tuple[int, ...]]]] = []
        for s in range(n):
            emit = log_emissions[t, s]
            if emit == _NEG_INF:
                current.append([])
                continue
            # Gather candidate extensions from every predecessor's list.
            candidates: list[tuple[float, tuple[int, ...]]] = []
            for r in range(n):
                step = log_transition[r, s]
                if step == _NEG_INF or not previous[r]:
                    continue
                for logp, path in previous[r]:
                    candidates.append((logp + step + emit, path + (s,)))
            if len(candidates) > k:
                candidates = heapq.nlargest(k, candidates, key=lambda c: c[0])
            candidates.sort(key=lambda c: (-c[0], c[1]))
            current.append(candidates[:k])
        previous = current

    finals = [entry for cell in previous for entry in cell]
    finals.sort(key=lambda c: (-c[0], c[1]))
    return [
        DecodedPath(states=path, log_probability=logp) for logp, path in finals[:k]
    ]
