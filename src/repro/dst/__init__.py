"""Dempster-Shafer theory of evidence: masses, combination, ranking.

QUEST's combiner module: merges the a-priori and feedback-based forward
results, and then forward configurations with backward interpretations,
under per-source uncertainty parameters.
"""

from repro.dst.belief import belief, pignistic, plausibility, rank_hypotheses
from repro.dst.combine import combine_scores, conflict, dempster_combine
from repro.dst.mass import FrameInterning, MassFunction

__all__ = [
    "FrameInterning",
    "MassFunction",
    "belief",
    "combine_scores",
    "conflict",
    "dempster_combine",
    "pignistic",
    "plausibility",
    "rank_hypotheses",
]
