"""Dempster's rule of combination and the QUEST two-source combiner.

Dempster's rule aggregates two independent bodies of evidence into one:
masses multiply on intersecting focal elements and the conflicting mass
(products landing on the empty set) is renormalised away. The paper's
``CombinerDST`` wraps this rule with QUEST-specific plumbing: per-source
score normalisation and per-source ignorance (``setUncertainty``), exactly
as in Algorithm 1.

Two implementations of the combination loop share one contract:

* the bitmask path (the default) aligns both operands onto one
  :class:`~repro.dst.mass.FrameInterning` and walks parallel
  ``(bitmask, mass)`` arrays, so every focal intersection is a single
  integer ``&`` — no frozenset allocation per pair. Zero-probability
  products are skipped before any intersection work.
* the reference path (``bitmask=False``, kept as the executable
  specification and parity oracle) iterates the public frozenset views.

Both accumulate products in the same nested order, so the resulting masses
are bit-identical float for float; ``QuestSettings.bitmask_dst`` selects
the path engine-wide.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.dst.belief import rank_hypotheses
from repro.dst.mass import FrameInterning, MassFunction
from repro.errors import CombinationError

__all__ = ["dempster_combine", "combine_scores", "conflict"]


def _aligned_right_items(
    left: MassFunction, right: MassFunction
) -> list[tuple[int, float]]:
    """Right-hand mask items re-encoded against the left interning.

    When both operands already share one interning (the common case — see
    :func:`combine_scores` and the pipeline stages) this is free; otherwise
    the right side's focal bitmasks are translated once, extending the left
    interning append-only (existing masks stay valid).
    """
    interning = left.interning
    if right.interning is interning:
        return list(right.mask_items())
    remap = interning.mask_of
    members = right.interning.members
    return [(remap(members(mask)), mass) for mask, mass in right.mask_items()]


def _aligned_frame_mask(left: MassFunction, right: MassFunction) -> int:
    """The right operand's frame mask, encoded against the left interning."""
    if right.interning is left.interning:
        return right.frame_mask
    return left.interning.mask_of(right.interning.members(right.frame_mask))


def conflict(
    left: MassFunction, right: MassFunction, bitmask: bool = True
) -> float:
    """The conflict coefficient K: mass landing on the empty set.

    A pure query: unlike :func:`dempster_combine` it never grows either
    operand's interning — right-hand focals are projected onto the left
    interning's *known* hypotheses, which is sufficient because a
    hypothesis the left side never interned cannot intersect any left
    focal.
    """
    if not bitmask:
        total = 0.0
        for left_focal, left_mass in left.items():
            for right_focal, right_mass in right.items():
                product = left_mass * right_mass
                if product == 0.0:
                    continue
                if not left_focal & right_focal:
                    total += product
        return total
    if right.interning is left.interning:
        right_items = list(right.mask_items())
    else:
        project = left.interning.partial_mask
        members = right.interning.members
        right_items = [
            (project(members(mask)), mass) for mask, mass in right.mask_items()
        ]
    total = 0.0
    for left_mask, left_mass in left.mask_items():
        for right_mask, right_mass in right_items:
            product = left_mass * right_mass
            if product == 0.0:
                continue
            if not left_mask & right_mask:
                total += product
    return total


def dempster_combine(
    left: MassFunction, right: MassFunction, bitmask: bool = True
) -> MassFunction:
    """Dempster's rule of combination.

    Raises :class:`CombinationError` on total conflict (K = 1), where the
    rule is undefined. Frames are unioned: QUEST builds both sources over
    the union of their candidate sets, so focal elements intersect exactly
    on shared candidates.

    The result shares the *left* operand's interning; when the operands'
    internings differ, the left interning is extended (append-only —
    existing masks stay valid) with the right side's hypotheses.

    Args:
        left: first body of evidence.
        right: second body of evidence.
        bitmask: run the integer-bitmask loop (the default); ``False``
            selects the frozenset reference loop. Results are identical.
    """
    # Both branches build the result against the *left* interning: for the
    # reference loop only the frame mask needs translating — the masses
    # themselves are re-interned focal by focal as they are assigned, and
    # per-hypothesis sums do not depend on bit numbering.
    combined = MassFunction(interning=left.interning)
    combined._frame_mask = left.frame_mask | _aligned_frame_mask(left, right)
    conflicting = 0.0
    if bitmask:
        right_items = _aligned_right_items(left, right)
        masses = combined._masses
        for left_mask, left_mass in left.mask_items():
            for right_mask, right_mass in right_items:
                product = left_mass * right_mass
                if product == 0.0:
                    continue
                intersection = left_mask & right_mask
                if intersection:
                    masses[intersection] = masses.get(intersection, 0.0) + product
                else:
                    conflicting += product
    else:
        for left_focal, left_mass in left.items():
            for right_focal, right_mass in right.items():
                product = left_mass * right_mass
                if product == 0.0:
                    continue
                intersection = left_focal & right_focal
                if intersection:
                    combined.assign(intersection, product)
                else:
                    conflicting += product
    if not combined._masses:
        raise CombinationError(
            f"total conflict (K={conflicting:.6f}): sources share no hypothesis"
        )
    combined.normalize()
    combined.validate()
    return combined


def combine_scores(
    left_scores: Mapping[Hashable, float],
    right_scores: Mapping[Hashable, float],
    left_ignorance: float,
    right_ignorance: float,
    k: int | None = None,
    bitmask: bool = True,
) -> list[tuple[Hashable, float]]:
    """The paper's ``CombinerDST`` in one call.

    Both score sets become bodies of evidence over the *union* frame (so a
    hypothesis known to only one source survives through the other's
    ignorance mass), are weighted by their ignorance parameters, combined
    with Dempster's rule, and ranked by pignistic probability. One
    hypothesis interning is shared by both bodies and the result, so no
    frame is re-encoded mid-combination.

    Args:
        left_scores: hypothesis -> positive score, first source.
        right_scores: hypothesis -> positive score, second source.
        left_ignorance: mass the first source reserves for "don't know"
            (the paper's ``O`` parameter for that source). Higher means the
            source influences the outcome *less*.
        right_ignorance: same for the second source.
        k: optional cut-off for the returned ranking.
        bitmask: combination-loop implementation (see
            :func:`dempster_combine`).

    Returns:
        ``(hypothesis, probability)`` pairs, best first.
    """
    if not left_scores and not right_scores:
        raise CombinationError("both sources are empty")
    frame = frozenset(left_scores) | frozenset(right_scores)
    interning = FrameInterning(frame)
    left_mass = MassFunction.from_scores(
        left_scores, left_ignorance, frame, interning=interning
    )
    right_mass = MassFunction.from_scores(
        right_scores, right_ignorance, frame, interning=interning
    )
    combined = dempster_combine(left_mass, right_mass, bitmask=bitmask)
    return rank_hypotheses(combined, k)
