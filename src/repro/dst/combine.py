"""Dempster's rule of combination and the QUEST two-source combiner.

Dempster's rule aggregates two independent bodies of evidence into one:
masses multiply on intersecting focal elements and the conflicting mass
(products landing on the empty set) is renormalised away. The paper's
``CombinerDST`` wraps this rule with QUEST-specific plumbing: per-source
score normalisation and per-source ignorance (``setUncertainty``), exactly
as in Algorithm 1.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.dst.belief import rank_hypotheses
from repro.dst.mass import MassFunction
from repro.errors import CombinationError

__all__ = ["dempster_combine", "combine_scores", "conflict"]


def conflict(left: MassFunction, right: MassFunction) -> float:
    """The conflict coefficient K: mass landing on the empty set."""
    total = 0.0
    for left_focal, left_mass in left.items():
        for right_focal, right_mass in right.items():
            if not left_focal & right_focal:
                total += left_mass * right_mass
    return total


def dempster_combine(left: MassFunction, right: MassFunction) -> MassFunction:
    """Dempster's rule of combination.

    Raises :class:`CombinationError` on total conflict (K = 1), where the
    rule is undefined. Frames are unioned: QUEST builds both sources over
    the union of their candidate sets, so focal elements intersect exactly
    on shared candidates.
    """
    combined = MassFunction(frame=left.frame | right.frame)
    conflicting = 0.0
    for left_focal, left_mass in left.items():
        for right_focal, right_mass in right.items():
            intersection = left_focal & right_focal
            product = left_mass * right_mass
            if product == 0.0:
                continue
            if intersection:
                combined.assign(intersection, product)
            else:
                conflicting += product
    if not combined.focal_elements:
        raise CombinationError(
            f"total conflict (K={conflicting:.6f}): sources share no hypothesis"
        )
    combined.normalize()
    combined.validate()
    return combined


def combine_scores(
    left_scores: Mapping[Hashable, float],
    right_scores: Mapping[Hashable, float],
    left_ignorance: float,
    right_ignorance: float,
    k: int | None = None,
) -> list[tuple[Hashable, float]]:
    """The paper's ``CombinerDST`` in one call.

    Both score sets become bodies of evidence over the *union* frame (so a
    hypothesis known to only one source survives through the other's
    ignorance mass), are weighted by their ignorance parameters, combined
    with Dempster's rule, and ranked by pignistic probability.

    Args:
        left_scores: hypothesis -> positive score, first source.
        right_scores: hypothesis -> positive score, second source.
        left_ignorance: mass the first source reserves for "don't know"
            (the paper's ``O`` parameter for that source). Higher means the
            source influences the outcome *less*.
        right_ignorance: same for the second source.
        k: optional cut-off for the returned ranking.

    Returns:
        ``(hypothesis, probability)`` pairs, best first.
    """
    if not left_scores and not right_scores:
        raise CombinationError("both sources are empty")
    frame = frozenset(left_scores) | frozenset(right_scores)
    left_mass = MassFunction.from_scores(left_scores, left_ignorance, frame)
    right_mass = MassFunction.from_scores(right_scores, right_ignorance, frame)
    combined = dempster_combine(left_mass, right_mass)
    return rank_hypotheses(combined, k)
