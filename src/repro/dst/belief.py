"""Belief, plausibility and the pignistic transform.

After combining evidence, QUEST needs a total order over hypotheses to
report top-k results. The pignistic transform (Smets) distributes each focal
element's mass uniformly over its members, yielding a probability
distribution suitable for ranking; belief and plausibility bound it from
below and above.

All three consume the mass function's focal *bitmasks* directly (see
:class:`~repro.dst.mass.FrameInterning`): subset and intersection tests are
integer operations, a focal's cardinality is a popcount, and hypotheses are
enumerated in interned-bit order — deterministic regardless of how the
focal sets were built.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.dst.mass import MassFunction

__all__ = ["belief", "plausibility", "pignistic", "rank_hypotheses"]


def belief(mass_function: MassFunction, hypothesis_set: Iterable[Hashable]) -> float:
    """Total mass of focal elements *contained in* the hypothesis set."""
    target = mass_function.interning.partial_mask(hypothesis_set)
    return sum(
        mass
        for focal, mass in mass_function.mask_items()
        if not focal & ~target
    )


def plausibility(
    mass_function: MassFunction, hypothesis_set: Iterable[Hashable]
) -> float:
    """Total mass of focal elements *intersecting* the hypothesis set."""
    target = mass_function.interning.partial_mask(hypothesis_set)
    return sum(
        mass for focal, mass in mass_function.mask_items() if focal & target
    )


def pignistic(mass_function: MassFunction) -> dict[Hashable, float]:
    """Smets' pignistic probability: mass spread uniformly inside focals."""
    probabilities: dict[Hashable, float] = {}
    iter_hypotheses = mass_function.interning.iter_hypotheses
    for focal, mass in mass_function.mask_items():
        share = mass / focal.bit_count()
        for hypothesis in iter_hypotheses(focal):
            probabilities[hypothesis] = probabilities.get(hypothesis, 0.0) + share
    return probabilities


def rank_hypotheses(
    mass_function: MassFunction, k: int | None = None
) -> list[tuple[Hashable, float]]:
    """Hypotheses sorted by pignistic probability (descending, stable).

    Ties break on the string rendering of the hypothesis so rankings are
    deterministic across runs. Returns at most *k* entries when given.
    """
    scored = pignistic(mass_function)
    ordered = sorted(scored.items(), key=lambda item: (-item[1], str(item[0])))
    return ordered if k is None else ordered[:k]
