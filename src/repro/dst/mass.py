"""Mass functions over a frame of discernment (Dempster-Shafer theory).

A body of evidence assigns probability mass to *subsets* of the frame Θ
(the set of base hypotheses — for QUEST, candidate configurations,
interpretations or explanations). Mass on the whole frame Θ expresses
*ignorance*: belief the source declines to commit to any specific
hypothesis. QUEST uses that ignorance mass as the per-source uncertainty
parameters ``O_Cap``, ``O_Cf``, ``O_C``, ``O_I``.

Hypotheses may be any hashable objects; focal elements are ``frozenset``s
of them *in the public API*. Internally every hypothesis is interned to a
bit position of a :class:`FrameInterning` and focal elements are stored as
integer bitmasks, so subset tests, intersections and unions on the hot
combination path are single bitwise operations over machine integers
instead of frozenset allocations. All ``frozenset``-typed accessors
(:attr:`MassFunction.frame`, :attr:`MassFunction.focal_elements`,
:meth:`MassFunction.items`) are views reconstructed from the bitmasks, so
callers observe exactly the pre-bitmask behaviour.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from repro.bits import iter_bits
from repro.errors import CombinationError

__all__ = ["FrameInterning", "MassFunction"]

Hypothesis = Hashable
FocalElement = frozenset


class FrameInterning:
    """An append-only mapping between hypotheses and bit positions.

    One interning can be shared by several mass functions (all the bodies
    of evidence of one Dempster combination, say), which makes their focal
    bitmasks directly comparable — ``dempster_combine`` then intersects
    focal elements with a single ``&``. Bits are assigned in first-seen
    order and never reassigned, so existing masks stay valid as the
    interning grows. Sharing one interning across threads is safe only for
    read access; QUEST's pipelines build their internings per query.
    """

    __slots__ = ("_index", "_hypotheses", "_members")

    def __init__(self, hypotheses: Iterable[Hypothesis] = ()) -> None:
        self._index: dict[Hypothesis, int] = {}
        self._hypotheses: list[Hypothesis] = []
        #: mask -> frozenset view cache (masks recur heavily in combines).
        self._members: dict[int, frozenset] = {}
        for hypothesis in hypotheses:
            self.intern(hypothesis)

    def __len__(self) -> int:
        return len(self._hypotheses)

    def intern(self, hypothesis: Hypothesis) -> int:
        """The bit position of *hypothesis*, assigning the next free bit."""
        bit = self._index.get(hypothesis)
        if bit is None:
            bit = len(self._hypotheses)
            self._index[hypothesis] = bit
            self._hypotheses.append(hypothesis)
        return bit

    def mask_of(self, hypotheses: Iterable[Hypothesis]) -> int:
        """The bitmask of a hypothesis set, interning new hypotheses."""
        mask = 0
        for hypothesis in hypotheses:
            mask |= 1 << self.intern(hypothesis)
        return mask

    def lookup_mask(self, hypotheses: Iterable[Hypothesis]) -> int | None:
        """The bitmask of a hypothesis set, or ``None`` if any is unknown."""
        mask = 0
        index = self._index
        for hypothesis in hypotheses:
            bit = index.get(hypothesis)
            if bit is None:
                return None
            mask |= 1 << bit
        return mask

    def partial_mask(self, hypotheses: Iterable[Hypothesis]) -> int:
        """The bitmask of the *known* members of a hypothesis set.

        Unknown hypotheses contribute no bit — they cannot occur in any
        focal element encoded against this interning, so dropping them
        preserves every subset/intersection test against focals.
        """
        mask = 0
        index = self._index
        for hypothesis in hypotheses:
            bit = index.get(hypothesis)
            if bit is not None:
                mask |= 1 << bit
        return mask

    def members(self, mask: int) -> frozenset:
        """The hypothesis set a bitmask denotes (cached frozenset view)."""
        cached = self._members.get(mask)
        if cached is None:
            hypotheses = self._hypotheses
            cached = frozenset(hypotheses[bit] for bit in iter_bits(mask))
            self._members[mask] = cached
        return cached

    def iter_hypotheses(self, mask: int) -> Iterator[Hypothesis]:
        """Iterate a bitmask's hypotheses in bit (first-interned) order."""
        hypotheses = self._hypotheses
        for bit in iter_bits(mask):
            yield hypotheses[bit]


class MassFunction:
    """An immutable-by-convention basic probability assignment.

    Invariants (enforced by :meth:`validate`): masses are non-negative and
    sum to 1 (within floating tolerance); the empty set carries no mass.

    Args:
        masses: optional initial ``{focal element: mass}`` assignment.
        frame: optional frame of discernment (grows as focals are added).
        interning: the hypothesis interning to encode against; pass one
            shared instance when several mass functions will be combined
            (see :class:`FrameInterning`), else a private one is created.
    """

    __slots__ = ("_interning", "_frame_mask", "_masses")

    def __init__(
        self,
        masses: Mapping[frozenset, float] | None = None,
        frame: Iterable[Hypothesis] | None = None,
        interning: FrameInterning | None = None,
    ) -> None:
        self._interning = interning if interning is not None else FrameInterning()
        #: masks keyed by focal bitmask, in assignment order (matching the
        #: insertion order the frozenset-keyed dict used to have).
        self._masses: dict[int, float] = {}
        self._frame_mask: int = (
            self._interning.mask_of(frame) if frame is not None else 0
        )
        if masses:
            for focal, mass in masses.items():
                self.assign(frozenset(focal), mass)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_scores(
        cls,
        scores: Mapping[Hypothesis, float],
        ignorance: float = 0.0,
        frame: Iterable[Hypothesis] | None = None,
        interning: FrameInterning | None = None,
    ) -> "MassFunction":
        """Build the QUEST evidence body from per-hypothesis scores.

        This is the ``addEvidence`` / ``setUncertainty`` / ``normalize``
        sequence of the paper's ``CombinerDST``: scores are normalised to
        sum to ``1 - ignorance`` over singleton focal elements, and the
        remaining *ignorance* mass goes to the whole frame. The frame
        defaults to the scored hypotheses but is typically the *union* of
        both sources' candidates.
        """
        if not 0.0 <= ignorance <= 1.0:
            raise CombinationError(f"ignorance must be in [0, 1], got {ignorance}")
        positive = {h: s for h, s in scores.items() if s > 0.0}
        if any(s < 0.0 for s in scores.values()):
            raise CombinationError("scores must be non-negative")
        mass_function = cls(frame=frame, interning=interning)
        encode = mass_function._interning
        frame_mask = mass_function._frame_mask
        for hypothesis in positive:
            frame_mask |= 1 << encode.intern(hypothesis)
        mass_function._frame_mask = frame_mask
        total = sum(positive.values())
        if total <= 0.0:
            # No committed evidence at all: total ignorance.
            if not frame_mask:
                raise CombinationError("cannot build evidence over an empty frame")
            mass_function._assign_mask(frame_mask, 1.0)
            return mass_function
        budget = 1.0 - ignorance
        for hypothesis, score in positive.items():
            mass_function._assign_mask(
                1 << encode.intern(hypothesis), budget * score / total
            )
        if ignorance > 0.0:
            mass_function._assign_mask(frame_mask, ignorance)
        return mass_function

    @classmethod
    def vacuous(
        cls,
        frame: Iterable[Hypothesis],
        interning: FrameInterning | None = None,
    ) -> "MassFunction":
        """The fully ignorant mass function: all mass on Θ."""
        mass_function = cls(frame=frame, interning=interning)
        if not mass_function._frame_mask:
            raise CombinationError("vacuous mass function needs a non-empty frame")
        mass_function._assign_mask(mass_function._frame_mask, 1.0)
        return mass_function

    # -- mutation (construction-time only) ----------------------------------

    def assign(self, focal: Iterable[Hypothesis], mass: float) -> None:
        """Add *mass* to a focal element (accumulating)."""
        if mass < 0.0:
            raise CombinationError(f"negative mass {mass} on {set(focal)}")
        mask = self._interning.mask_of(focal)
        if not mask:
            if mass > 0.0:
                raise CombinationError("the empty set cannot carry mass")
            return
        if mass == 0.0:
            return
        self._frame_mask |= mask
        self._masses[mask] = self._masses.get(mask, 0.0) + mass

    def _assign_mask(self, mask: int, mass: float) -> None:
        """Accumulate *mass* on an already-encoded non-empty focal bitmask."""
        if mass == 0.0:
            return  # keep the invariant: focal elements carry positive mass
        self._frame_mask |= mask
        self._masses[mask] = self._masses.get(mask, 0.0) + mass

    def normalize(self) -> "MassFunction":
        """Rescale masses to sum to 1 (in place); returns self."""
        total = sum(self._masses.values())
        if total <= 0.0:
            raise CombinationError("cannot normalise an empty mass function")
        for focal in self._masses:
            self._masses[focal] /= total
        return self

    # -- access -------------------------------------------------------------

    @property
    def interning(self) -> FrameInterning:
        """The hypothesis interning focal bitmasks are encoded against."""
        return self._interning

    @property
    def frame_mask(self) -> int:
        """The frame Θ as a bitmask over :attr:`interning`."""
        return self._frame_mask

    @property
    def frame(self) -> frozenset:
        """The frame of discernment Θ."""
        return self._interning.members(self._frame_mask)

    @property
    def focal_elements(self) -> tuple[frozenset, ...]:
        """Subsets with positive mass."""
        members = self._interning.members
        return tuple(members(mask) for mask in self._masses)

    def mass(self, focal: Iterable[Hypothesis]) -> float:
        """Mass committed exactly to *focal* (0.0 if not a focal element)."""
        mask = self._interning.lookup_mask(focal)
        if mask is None:
            return 0.0
        return self._masses.get(mask, 0.0)

    def ignorance(self) -> float:
        """Mass on the whole frame Θ."""
        return self._masses.get(self._frame_mask, 0.0)

    def items(self) -> Iterator[tuple[frozenset, float]]:
        """Iterate ``(focal element, mass)`` pairs."""
        members = self._interning.members
        return ((members(mask), mass) for mask, mass in self._masses.items())

    def mask_items(self) -> Iterator[tuple[int, float]]:
        """Iterate ``(focal bitmask, mass)`` pairs (the fast-path view).

        Masks are only meaningful against :attr:`interning`; combine two
        mass functions through :func:`repro.dst.combine.dempster_combine`,
        which aligns internings first.
        """
        return iter(self._masses.items())

    def total(self) -> float:
        """Sum of all masses (1.0 for a valid body of evidence)."""
        return sum(self._masses.values())

    def validate(self, tolerance: float = 1e-9) -> None:
        """Raise :class:`CombinationError` unless this is a valid BPA."""
        total = self.total()
        if abs(total - 1.0) > tolerance:
            raise CombinationError(f"masses sum to {total}, expected 1.0")
        frame_mask = self._frame_mask
        for mask, mass in self._masses.items():
            if mass < -tolerance:
                raise CombinationError(
                    f"negative mass on {set(self._interning.members(mask))}"
                )
            if mask & ~frame_mask:
                raise CombinationError("focal element outside the frame")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MassFunction):
            return NotImplemented
        if self.frame != other.frame:
            return False
        if self._interning is other._interning:
            keys = set(self._masses) | set(other._masses)
            return all(
                abs(self._masses.get(k, 0.0) - other._masses.get(k, 0.0)) < 1e-9
                for k in keys
            )
        mine = {focal: mass for focal, mass in self.items()}
        theirs = {focal: mass for focal, mass in other.items()}
        keys = set(mine) | set(theirs)
        return all(
            abs(mine.get(k, 0.0) - theirs.get(k, 0.0)) < 1e-9 for k in keys
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{sorted(map(str, focal))}: {mass:.3f}"
            for focal, mass in sorted(
                ((self._interning.members(m), mass) for m, mass in self._masses.items()),
                key=lambda item: -item[1],
            )
        )
        return f"MassFunction({{{parts}}})"
