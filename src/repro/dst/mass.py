"""Mass functions over a frame of discernment (Dempster-Shafer theory).

A body of evidence assigns probability mass to *subsets* of the frame Θ
(the set of base hypotheses — for QUEST, candidate configurations,
interpretations or explanations). Mass on the whole frame Θ expresses
*ignorance*: belief the source declines to commit to any specific
hypothesis. QUEST uses that ignorance mass as the per-source uncertainty
parameters ``O_Cap``, ``O_Cf``, ``O_C``, ``O_I``.

Hypotheses may be any hashable objects; focal elements are ``frozenset``s
of them.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from repro.errors import CombinationError

__all__ = ["MassFunction"]

Hypothesis = Hashable
FocalElement = frozenset


class MassFunction:
    """An immutable-by-convention basic probability assignment.

    Invariants (enforced by :meth:`validate`): masses are non-negative and
    sum to 1 (within floating tolerance); the empty set carries no mass.
    """

    def __init__(
        self,
        masses: Mapping[frozenset, float] | None = None,
        frame: Iterable[Hypothesis] | None = None,
    ) -> None:
        self._masses: dict[frozenset, float] = {}
        self._frame: frozenset = frozenset(frame) if frame is not None else frozenset()
        if masses:
            for focal, mass in masses.items():
                self.assign(frozenset(focal), mass)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_scores(
        cls,
        scores: Mapping[Hypothesis, float],
        ignorance: float = 0.0,
        frame: Iterable[Hypothesis] | None = None,
    ) -> "MassFunction":
        """Build the QUEST evidence body from per-hypothesis scores.

        This is the ``addEvidence`` / ``setUncertainty`` / ``normalize``
        sequence of the paper's ``CombinerDST``: scores are normalised to
        sum to ``1 - ignorance`` over singleton focal elements, and the
        remaining *ignorance* mass goes to the whole frame. The frame
        defaults to the scored hypotheses but is typically the *union* of
        both sources' candidates.
        """
        if not 0.0 <= ignorance <= 1.0:
            raise CombinationError(f"ignorance must be in [0, 1], got {ignorance}")
        positive = {h: s for h, s in scores.items() if s > 0.0}
        if any(s < 0.0 for s in scores.values()):
            raise CombinationError("scores must be non-negative")
        full_frame = frozenset(frame) if frame is not None else frozenset(positive)
        full_frame = full_frame | frozenset(positive)
        mass_function = cls(frame=full_frame)
        total = sum(positive.values())
        if total <= 0.0:
            # No committed evidence at all: total ignorance.
            if not full_frame:
                raise CombinationError("cannot build evidence over an empty frame")
            mass_function.assign(full_frame, 1.0)
            return mass_function
        budget = 1.0 - ignorance
        for hypothesis, score in positive.items():
            mass_function.assign(frozenset({hypothesis}), budget * score / total)
        if ignorance > 0.0:
            mass_function.assign(full_frame, ignorance)
        return mass_function

    @classmethod
    def vacuous(cls, frame: Iterable[Hypothesis]) -> "MassFunction":
        """The fully ignorant mass function: all mass on Θ."""
        frame_set = frozenset(frame)
        if not frame_set:
            raise CombinationError("vacuous mass function needs a non-empty frame")
        mass_function = cls(frame=frame_set)
        mass_function.assign(frame_set, 1.0)
        return mass_function

    # -- mutation (construction-time only) ----------------------------------

    def assign(self, focal: frozenset, mass: float) -> None:
        """Add *mass* to a focal element (accumulating)."""
        focal = frozenset(focal)
        if mass < 0.0:
            raise CombinationError(f"negative mass {mass} on {set(focal)}")
        if not focal:
            if mass > 0.0:
                raise CombinationError("the empty set cannot carry mass")
            return
        if mass == 0.0:
            return
        self._frame = self._frame | focal
        self._masses[focal] = self._masses.get(focal, 0.0) + mass

    def normalize(self) -> "MassFunction":
        """Rescale masses to sum to 1 (in place); returns self."""
        total = sum(self._masses.values())
        if total <= 0.0:
            raise CombinationError("cannot normalise an empty mass function")
        for focal in list(self._masses):
            self._masses[focal] /= total
        return self

    # -- access -------------------------------------------------------------

    @property
    def frame(self) -> frozenset:
        """The frame of discernment Θ."""
        return self._frame

    @property
    def focal_elements(self) -> tuple[frozenset, ...]:
        """Subsets with positive mass."""
        return tuple(self._masses)

    def mass(self, focal: Iterable[Hypothesis]) -> float:
        """Mass committed exactly to *focal* (0.0 if not a focal element)."""
        return self._masses.get(frozenset(focal), 0.0)

    def ignorance(self) -> float:
        """Mass on the whole frame Θ."""
        return self._masses.get(self._frame, 0.0)

    def items(self) -> Iterator[tuple[frozenset, float]]:
        """Iterate ``(focal element, mass)`` pairs."""
        return iter(self._masses.items())

    def total(self) -> float:
        """Sum of all masses (1.0 for a valid body of evidence)."""
        return sum(self._masses.values())

    def validate(self, tolerance: float = 1e-9) -> None:
        """Raise :class:`CombinationError` unless this is a valid BPA."""
        total = self.total()
        if abs(total - 1.0) > tolerance:
            raise CombinationError(f"masses sum to {total}, expected 1.0")
        for focal, mass in self._masses.items():
            if mass < -tolerance:
                raise CombinationError(f"negative mass on {set(focal)}")
            if not focal <= self._frame:
                raise CombinationError("focal element outside the frame")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MassFunction):
            return NotImplemented
        if self._frame != other._frame:
            return False
        keys = set(self._masses) | set(other._masses)
        return all(
            abs(self._masses.get(k, 0.0) - other._masses.get(k, 0.0)) < 1e-9
            for k in keys
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{sorted(map(str, focal))}: {mass:.3f}"
            for focal, mass in sorted(
                self._masses.items(), key=lambda item: -item[1]
            )
        )
        return f"MassFunction({{{parts}}})"
