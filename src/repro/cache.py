"""Thread-safe LRU caching with hit/miss accounting.

A leaf module with no intra-package dependencies, so the low-level
consumers (the source wrappers, the schema graph) can use it without
depending on the orchestration layer. The staged search pipeline
amortises work across queries through two instances of this cache:
keyword emission vectors on the source wrapper and top-k Steiner results
on the schema graph. Both sit on hot paths that may be exercised
concurrently (the multi-source executor fans per-source searches out
over threads), so every operation takes an internal lock.

Counters are cumulative over the cache's lifetime. Callers that want
*exact* per-operation deltas install a :class:`CacheRecorder` for the
duration of the operation (:func:`recording`): every ``get`` on any
cache additionally credits the hit or miss to the recorder active in the
calling thread's context, keyed by the cache's *label*. Because the
recorder travels in a :mod:`contextvars` context variable, two threads
searching through one shared cache each see only their own lookups —
this is what makes :class:`~repro.pipeline.context.SearchTrace` cache
deltas exact under concurrency, where before/after snapshots of the
global counters would interleave.
"""

from __future__ import annotations

import contextvars
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from repro.forksafe import register_lock_holder

__all__ = ["CacheRecorder", "CacheStats", "LRUCache", "record_lookup", "recording"]

_MISSING = object()


def _reset_cache_lock(cache: "LRUCache") -> None:
    cache._lock = threading.Lock()

#: The recorder lookups are credited to, if any. Context-local: a
#: pipeline run installs its recorder around its stages only, and worker
#: threads (which start from a fresh context) never inherit another
#: thread's recorder.
_RECORDER: contextvars.ContextVar["CacheRecorder | None"] = contextvars.ContextVar(
    "quest_cache_recorder", default=None
)


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    hits: int = 0
    misses: int = 0
    size: int = 0
    maxsize: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls counted."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter deltas between *earlier* and this snapshot."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            size=self.size,
            maxsize=self.maxsize,
        )

    def __str__(self) -> str:
        return f"hits={self.hits} misses={self.misses} size={self.size}"


class CacheRecorder:
    """Accumulates cache lookups for one logical operation, per label.

    Installed via :func:`recording`; every :meth:`LRUCache.get` executed
    while the recorder is active credits its hit or miss here as well as
    to the cache's cumulative counters. A recorder belongs to the one
    operation (one pipeline run) that installed it and is only ever
    touched from that operation's thread, so it needs no lock.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[str, list[int]] = {}

    def record(self, label: str, hit: bool) -> None:
        """Credit one lookup on the cache labelled *label*."""
        counts = self._counts.get(label)
        if counts is None:
            counts = self._counts[label] = [0, 0]
        counts[0 if hit else 1] += 1

    def stats(self, label: str) -> CacheStats:
        """Recorded hits/misses for *label* (zeros when never touched)."""
        counts = self._counts.get(label)
        if counts is None:
            return CacheStats()
        return CacheStats(hits=counts[0], misses=counts[1])

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{label}: hits={c[0]} misses={c[1]}"
            for label, c in sorted(self._counts.items())
        )
        return f"CacheRecorder({inner})"


@contextmanager
def recording(recorder: CacheRecorder) -> Iterator[CacheRecorder]:
    """Install *recorder* as this context's lookup recorder.

    Nested recordings shadow the outer recorder for their extent (the
    outer one resumes afterwards); lookups on threads other than the
    installing one are unaffected.
    """
    token = _RECORDER.set(recorder)
    try:
        yield recorder
    finally:
        _RECORDER.reset(token)


def record_lookup(label: str, hit: bool) -> None:
    """Credit one lookup on the cache labelled *label*, if recording.

    The hook for caches that are not :class:`LRUCache` instances (the
    Steiner plan cache keeps a plain dict) to participate in per-run
    attribution: a no-op unless the calling context installed a recorder.
    """
    recorder = _RECORDER.get()
    if recorder is not None:
        recorder.record(label, hit)


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry.

    ``get`` refreshes recency and counts a hit or miss; ``put`` inserts or
    refreshes. All operations are O(1) and thread-safe. *label* names the
    cache to an active :class:`CacheRecorder` ("emission", "steiner", ...)
    so per-operation attribution can tell co-resident caches apart.
    """

    def __init__(self, maxsize: int = 1024, label: str = "cache") -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.label = label
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        # The batch tier forks while sibling threads may sit inside this
        # lock; forked children get a fresh one (see repro.forksafe).
        register_lock_holder(self, _reset_cache_lock)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for *key*, counting a hit or a miss."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
            else:
                self._data.move_to_end(key)
                self._hits += 1
        recorder = _RECORDER.get()
        if recorder is not None:
            recorder.record(self.label, value is not _MISSING)
        return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) *key*, evicting the oldest entry if full."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._data.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (entries are preserved)."""
        with self._lock:
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        """Membership without touching recency or counters."""
        with self._lock:
            return key in self._data

    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._data),
                maxsize=self.maxsize,
            )

    def __repr__(self) -> str:
        return f"LRUCache({self.stats}, maxsize={self.maxsize})"
