"""Thread-safe LRU caching with hit/miss accounting.

A leaf module with no intra-package dependencies, so the low-level
consumers (the source wrappers, the schema graph) can use it without
depending on the orchestration layer. The staged search pipeline
amortises work across queries through two instances of this cache:
keyword emission vectors on the source wrapper and top-k Steiner results
on the schema graph. Both sit on hot paths that may be exercised
concurrently (the multi-source executor fans per-source searches out
over threads), so every operation takes an internal lock.

Counters are cumulative over the cache's lifetime; callers that want
per-query deltas (:class:`~repro.pipeline.context.SearchTrace`) snapshot
:attr:`LRUCache.stats` before and after and subtract.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

__all__ = ["CacheStats", "LRUCache"]

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    hits: int = 0
    misses: int = 0
    size: int = 0
    maxsize: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls counted."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter deltas between *earlier* and this snapshot."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            size=self.size,
            maxsize=self.maxsize,
        )

    def __str__(self) -> str:
        return f"hits={self.hits} misses={self.misses} size={self.size}"


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry.

    ``get`` refreshes recency and counts a hit or miss; ``put`` inserts or
    refreshes. All operations are O(1) and thread-safe.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for *key*, counting a hit or a miss."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) *key*, evicting the oldest entry if full."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._data.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (entries are preserved)."""
        with self._lock:
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        """Membership without touching recency or counters."""
        with self._lock:
            return key in self._data

    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._data),
                maxsize=self.maxsize,
            )

    def __repr__(self) -> str:
        return f"LRUCache({self.stats}, maxsize={self.maxsize})"
