"""SQLite storage backend: persistent relations, SQL pushdown, FTS scoring.

Relations live in a SQLite database (a file or ``:memory:``); generated
:class:`~repro.db.query.SelectQuery` plans are rendered to SQLite SQL by
:func:`repro.db.sqlgen.render_sql` and executed by SQLite itself — joins,
DISTINCT, LIMIT and result counting all happen engine-side. Emission
scoring is served from an inverted index stored *in* SQLite:

- ``_quest_postings(term, tbl, col, pos, tf)`` — the per-attribute
  posting lists, built with the exact tokenisation of
  :func:`repro.db.fulltext.tokenize_value`;
- ``_quest_fields(tbl, col, indexed, tokens)`` — per-attribute document
  counts (the TF normaliser);
- ``_quest_fts`` — an FTS5 mirror of the token streams, used to
  accelerate keyword-to-row retrieval when SQLite is compiled with FTS5
  (the backend degrades to the posting table transparently when not).

Scores are computed from SQL-aggregated integer counts with the same
float arithmetic as :class:`~repro.db.fulltext.FullTextIndex`, so they
are **bit-identical** to the memory backend's — which is what keeps
rankings independent of the storage engine. FTS5's own BM25 ranking is
deliberately not used: it would break that parity guarantee.

Predicate semantics are shared too: the backend registers the executor's
``contains_match``/``like_match`` as the ``QUEST_CONTAINS``/``QUEST_LIKE``
SQL functions, so CONTAINS/LIKE mean the same thing in both engines by
construction. Known deliberate divergences from the in-memory executor:
result *row order* is unspecified (SQL semantics) — counts and row sets
match for fully-consumed queries, but under a LIMIT that truncates, each
backend keeps its own (deterministic) subset; and type-mismatched
comparison predicates are rejected eagerly for the whole query rather
than lazily per evaluated row (the engine itself only generates CONTAINS
predicates, so neither divergence is reachable through a search).
"""

from __future__ import annotations

import math
import os
from collections import Counter
import re
import sqlite3
import threading
from dataclasses import replace
from datetime import date
from typing import Any, Mapping, Sequence

from repro.db.database import Database
from repro.db.executor import ResultSet, contains_match, like_match
from repro.db.fulltext import tokenize_value
from repro.db.query import Comparison, SelectQuery
from repro.db.schema import ColumnRef, Schema, TableSchema
from repro.forksafe import register_lock_holder
from repro.db.sqlgen import quote_identifier, render_sql
from repro.db.table import Row, normalise_row
from repro.db.types import DataType, coerce
from repro.errors import (
    CircuitOpenError,
    ExecutionError,
    IntegrityError,
    UnknownTableError,
)
from repro import faults
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.storage.base import StorageBackend

__all__ = ["SQLiteBackend"]

#: SQLite storage type per logical column type. BOOLEAN stores 0/1 and
#: DATE stores ISO-8601 text (lexicographic order == chronological order),
#: so native comparison operators behave like the in-memory executor's.
_SQLITE_TYPES: dict[DataType, str] = {
    DataType.INTEGER: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.TEXT: "TEXT",
    DataType.BOOLEAN: "INTEGER",
    DataType.DATE: "TEXT",
}

#: Python value types that compare against a column without a TypeError
#: in the in-memory executor; anything else is a type mismatch.
_COMPARABLE: dict[DataType, tuple[type, ...]] = {
    DataType.INTEGER: (bool, int, float),
    DataType.FLOAT: (bool, int, float),
    DataType.TEXT: (str,),
    DataType.BOOLEAN: (bool, int, float),
    DataType.DATE: (date,),
}

_FTS_TERM_RE = re.compile(r"[a-z0-9]+$")

_POSITION_COLUMN = "_quest_pos"

#: How long a connection waits on a writer's lock before giving up.
#: Multi-process serving (preforked workers over one database file) makes
#: brief lock collisions routine; failing them instantly with "database
#: is locked" would shed healthy requests.
_BUSY_TIMEOUT_MS = 5_000


def _encode(value: Any) -> Any:
    """A Python value as stored in SQLite (bool -> int, date -> ISO text)."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, date):
        return value.isoformat()
    return value


def _reset_sqlite_lock(backend: "SQLiteBackend") -> None:
    backend._lock = threading.RLock()
    # The breaker registers its own lock holder (see resilience.breaker),
    # so its lock is reset independently of ours.


class SQLiteBackend(StorageBackend):
    """Relations persisted to SQLite; search and execution pushed down."""

    name = "sqlite"
    supports_graph_pushdown = True
    supports_count_pushdown = True

    def __init__(
        self,
        schema: Schema,
        path: str = ":memory:",
        initialize: bool = True,
        breaker: CircuitBreaker | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        super().__init__(schema)
        self.path = str(path)
        #: Records the outcome of every read-path SQL call. Open, the
        #: *optional* pushdown surfaces (connected_nodes,
        #: join_path_candidates) fast-fail so the pipeline routes around
        #: a sick database via its in-process kernels; mandatory reads
        #: keep executing (with bounded retry) and their successes drive
        #: half-open recovery.
        self.breaker = breaker or CircuitBreaker(f"sqlite:{path}")
        #: Bounded jittered-exponential retry for transient
        #: OperationalError (busy/locked under WAL writer contention).
        self._retry = retry or RetryPolicy()
        # One connection guarded by a lock: the threaded multi-source tier
        # may execute queries from worker threads. Forked children get a
        # fresh lock (see repro.forksafe) — and a fresh connection too,
        # via the existing per-pid reconnect in _connection().
        self._lock = threading.RLock()
        register_lock_holder(self, _reset_sqlite_lock)
        self._conn = self._connect()
        self._pid = os.getpid()
        #: next insertion position per table (mirrors memory row positions)
        self._positions: dict[str, int] = {}
        #: bumped on every successful mutation (see StorageBackend.version)
        self._version = 0
        #: per-attribute indexed-document counts (the TF normaliser),
        #: mirrored in memory so scoring needs one SQL query, not three.
        self._field_sizes: dict[ColumnRef, int] = {
            ColumnRef(table.name, column.name): 0
            for table in schema.tables
            for column in table.columns
        }
        self._n_fields = len(self._field_sizes)
        #: (graph identity, topology revision) currently mirrored into the
        #: ``_quest_graph_edges`` relation (see :meth:`sync_schema_graph`).
        self._graph_sync: tuple[int, int] | None = None
        if initialize:
            self._create_tables()
            self._fts_enabled = self._create_fts()
            self._has_meta = True
            for table in schema.tables:
                self._positions[table.name] = 0
        else:
            self._fts_enabled = self._table_exists("_quest_fts")
            self._has_meta = self._table_exists("_quest_meta")
            self._load_state()

    def _connect(self) -> sqlite3.Connection:
        connection = sqlite3.connect(self.path, check_same_thread=False)
        connection.isolation_level = None  # autocommit; we batch manually
        # Multi-process read posture (file-backed stores only — a
        # ``:memory:`` database is private to this process and supports
        # neither WAL nor cross-process contention):
        # - WAL lets N serving workers read while a writer commits, with
        #   none of rollback journal's writer-starves-readers locking;
        # - synchronous=NORMAL is WAL's recommended durability point
        #   (fsync on checkpoint, not on every commit);
        # - busy_timeout absorbs brief lock collisions instead of
        #   surfacing "database is locked" to a healthy request.
        if self.path != ":memory:":
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
        connection.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        connection.create_function(
            "QUEST_CONTAINS", 2, self._contains_udf, deterministic=True
        )
        connection.create_function(
            "QUEST_LIKE", 2, self._like_udf, deterministic=True
        )
        return connection

    @property
    def _connection(self) -> sqlite3.Connection:
        """The live connection, reopened after a fork for file-backed stores.

        SQLite forbids carrying a connection across ``fork()`` — workers
        of the forked batch tier and the preforked serving tier would
        otherwise share the parent's open file description (and its
        POSIX locks, which fork silently drops). The guard is keyed on
        pid: the first statement a forked child runs opens its own
        connection, which re-applies the WAL/busy_timeout pragmas.
        ``:memory:`` databases are exempt: fork copies the whole
        in-process store, so the child's connection is private (and
        reconnecting would open an empty database).
        """
        if self._pid != os.getpid() and self.path != ":memory:":
            self._conn = self._connect()
            self._pid = os.getpid()
        return self._conn

    # -- construction ------------------------------------------------------

    @classmethod
    def from_database(
        cls, database: Database, path: str = ":memory:", **kwargs: Any
    ) -> "SQLiteBackend":
        """A fresh backend loaded with the contents of *database*."""
        backend = cls(database.schema, path=path, **kwargs)
        backend._bulk_load(database)
        return backend

    @classmethod
    def open(cls, schema: Schema, path: str) -> "SQLiteBackend":
        """Attach to an existing SQLite file previously built for *schema*."""
        return cls(schema, path=path, initialize=False)

    # -- DDL and state -----------------------------------------------------

    def _create_tables(self) -> None:
        cursor = self._connection.cursor()
        cursor.execute("BEGIN")
        for table in self.schema.tables:
            cursor.execute(f"DROP TABLE IF EXISTS {quote_identifier(table.name)}")
            cursor.execute(self._create_table_sql(table))
        for name in ("_quest_postings", "_quest_fields", "_quest_meta"):
            cursor.execute(f"DROP TABLE IF EXISTS {quote_identifier(name)}")
        cursor.execute(
            'CREATE TABLE "_quest_postings" ('
            "term TEXT NOT NULL, tbl TEXT NOT NULL, col TEXT NOT NULL, "
            "pos INTEGER NOT NULL, tf INTEGER NOT NULL, "
            "PRIMARY KEY (term, tbl, col, pos))"
        )
        cursor.execute(
            'CREATE TABLE "_quest_fields" ('
            "tbl TEXT NOT NULL, col TEXT NOT NULL, "
            "indexed INTEGER NOT NULL, tokens INTEGER NOT NULL, "
            "PRIMARY KEY (tbl, col))"
        )
        cursor.executemany(
            'INSERT INTO "_quest_fields" (tbl, col, indexed, tokens) VALUES (?, ?, 0, 0)',
            [(ref.table, ref.column) for ref in self._field_sizes],
        )
        # Durable backend state; holds the applied journal sequence
        # number, updated in the same transaction as each batched
        # mutation so replay after a crash resumes at exactly the right
        # record (never re-applying, never skipping).
        cursor.execute(
            'CREATE TABLE "_quest_meta" ('
            "key TEXT PRIMARY KEY, value INTEGER NOT NULL)"
        )
        cursor.execute(
            'INSERT INTO "_quest_meta" (key, value) VALUES (?, 0)',
            ("applied_seq",),
        )
        cursor.execute("COMMIT")

    def _create_table_sql(self, table: TableSchema) -> str:
        parts = []
        for column in table.columns:
            null = "" if column.nullable else " NOT NULL"
            parts.append(
                f"{quote_identifier(column.name)} {_SQLITE_TYPES[column.dtype]}{null}"
            )
        # An explicit position column (not rowid): an INTEGER PRIMARY KEY
        # would alias rowid to the key value, losing insertion order.
        parts.append(f"{quote_identifier(_POSITION_COLUMN)} INTEGER NOT NULL")
        keys = ", ".join(quote_identifier(name) for name in table.primary_key)
        parts.append(f"UNIQUE ({keys})")
        return f"CREATE TABLE {quote_identifier(table.name)} ({', '.join(parts)})"

    def _create_fts(self) -> bool:
        try:
            self._connection.execute('DROP TABLE IF EXISTS "_quest_fts"')
            self._connection.execute(
                'CREATE VIRTUAL TABLE "_quest_fts" USING fts5('
                "tbl UNINDEXED, col UNINDEXED, pos UNINDEXED, doc)"
            )
        except sqlite3.OperationalError:
            return False
        return True

    def _table_exists(self, name: str) -> bool:
        row = self._connection.execute(
            "SELECT 1 FROM sqlite_master WHERE name = ?", (name,)
        ).fetchone()
        return row is not None

    def _load_state(self) -> None:
        """Rehydrate counters from an existing file (``open`` path)."""
        for table in self.schema.tables:
            if not self._table_exists(table.name):
                raise UnknownTableError(table.name)
        self._reload_counters()
        if self._has_meta:
            row = self._connection.execute(
                'SELECT value FROM "_quest_meta" WHERE key = ?',
                ("applied_seq",),
            ).fetchone()
            if row is not None:
                self._applied_seq = int(row[0])

    def _bulk_load(self, database: Database) -> None:
        with self._lock:
            cursor = self._connection.cursor()
            cursor.execute("BEGIN")
            try:
                for table in database.tables:
                    for row in table.rows:
                        self._insert_row(cursor, table.schema, row)
                cursor.execute("COMMIT")
            except BaseException:
                cursor.execute("ROLLBACK")
                self._reload_counters()
                raise
            self._version += 1

    # -- UDFs --------------------------------------------------------------

    @staticmethod
    def _contains_udf(value: Any, keyword: Any) -> int:
        return 1 if contains_match(value, keyword) else 0

    @staticmethod
    def _like_udf(value: Any, pattern: Any) -> int:
        return 1 if like_match(value, pattern) else 0

    # -- mutation ----------------------------------------------------------

    @property
    def version(self) -> int:
        return self._version

    def insert(self, table: str, values: Mapping[str, Any] | Sequence[Any]) -> Row:
        table_schema = self._table_schema(table)
        row = self._normalise(table_schema, values)
        with self._lock:
            cursor = self._connection.cursor()
            cursor.execute("BEGIN")
            try:
                self._insert_row(cursor, table_schema, row)
                cursor.execute("COMMIT")
            except BaseException:
                cursor.execute("ROLLBACK")
                self._reload_counters()
                raise
            self._version += 1
        return row

    # insert_many: the base class loops ``insert`` row by row, matching
    # the memory backend's semantics exactly — a mid-batch failure keeps
    # every row inserted before it. (``from_database`` bulk-loads in one
    # transaction instead; a failure there discards the whole backend.)

    def _table_schema(self, table: str) -> TableSchema:
        try:
            return self.schema.table(table)
        except Exception:
            raise UnknownTableError(table) from None

    def _normalise(
        self, table: TableSchema, values: Mapping[str, Any] | Sequence[Any]
    ) -> Row:
        """Coerce and validate one row (same contract as ``Table.insert``)."""
        row = normalise_row(table, values)
        by_name = dict(zip((column.name for column in table.columns), row))
        if any(by_name[name] is None for name in table.primary_key):
            raise IntegrityError(f"{table.name}: primary key may not be NULL")
        return row

    def _reload_counters(self) -> None:
        """Restore the in-memory mirrors from SQL after a rollback.

        ``_insert_row`` advances ``_positions``/``_field_sizes`` as it
        goes; when its transaction rolls back, the stored tables are the
        only truth, so the mirrors are re-read from them.
        """
        for table in self.schema.tables:
            # MAX(pos) + 1, not COUNT(*): positions are never reused, so
            # after a physical delete the next insert must still land
            # past every position ever handed out (posting lists and the
            # memory backend's append-only physical list speak in them).
            self._positions[table.name] = (
                int(
                    self._connection.execute(
                        f"SELECT COALESCE(MAX({quote_identifier(_POSITION_COLUMN)}), -1) "
                        f"FROM {quote_identifier(table.name)}"
                    ).fetchone()[0]
                )
                + 1
            )
        for tbl, col, indexed in self._connection.execute(
            'SELECT tbl, col, indexed FROM "_quest_fields"'
        ):
            self._field_sizes[ColumnRef(tbl, col)] = int(indexed)

    def _insert_row(
        self, cursor: sqlite3.Cursor, table: TableSchema, row: Row
    ) -> None:
        """Store one already-normalised row and index its tokens."""
        position = self._positions[table.name]
        column_list = ", ".join(
            [quote_identifier(column.name) for column in table.columns]
            + [quote_identifier(_POSITION_COLUMN)]
        )
        placeholders = ", ".join(["?"] * (len(table.columns) + 1))
        try:
            cursor.execute(
                f"INSERT INTO {quote_identifier(table.name)} ({column_list}) "
                f"VALUES ({placeholders})",
                [_encode(value) for value in row] + [position],
            )
        except sqlite3.IntegrityError as exc:
            raise IntegrityError(f"{table.name}: {exc}") from None
        for column, value in zip(table.columns, row):
            tokens = tokenize_value(value)
            if not tokens:
                continue
            self._index_tokens(cursor, table.name, column.name, position, tokens)
            cursor.execute(
                'UPDATE "_quest_fields" SET indexed = indexed + 1, '
                "tokens = tokens + ? WHERE tbl = ? AND col = ?",
                (len(tokens), table.name, column.name),
            )
            self._field_sizes[ColumnRef(table.name, column.name)] += 1
        self._positions[table.name] = position + 1

    def _index_tokens(
        self,
        cursor: sqlite3.Cursor,
        table: str,
        column: str,
        position: int,
        tokens: list[str],
    ) -> None:
        """Record one value's token stream in the postings (and FTS mirror).

        The single indexing path for both the insert route and the
        ``refresh`` rebuild — the bit-parity guarantee depends on the two
        never diverging.
        """
        cursor.executemany(
            'INSERT INTO "_quest_postings" (term, tbl, col, pos, tf) '
            "VALUES (?, ?, ?, ?, ?)",
            [
                (term, table, column, position, tf)
                for term, tf in Counter(tokens).items()
            ],
        )
        if self._fts_enabled:
            cursor.execute(
                'INSERT INTO "_quest_fts" (tbl, col, pos, doc) '
                "VALUES (?, ?, ?, ?)",
                (table, column, position, " ".join(tokens)),
            )

    def refresh(self) -> None:
        """Rebuild the inverted index from the stored relations.

        Inserts through the backend maintain the index synchronously;
        this re-derivation exists for files written by another process.
        """
        with self._lock:
            cursor = self._connection.cursor()
            cursor.execute("BEGIN")
            try:
                cursor.execute('DELETE FROM "_quest_postings"')
                cursor.execute('UPDATE "_quest_fields" SET indexed = 0, tokens = 0')
                if self._fts_enabled:
                    cursor.execute('DELETE FROM "_quest_fts"')
                for ref in self._field_sizes:
                    self._field_sizes[ref] = 0
                for table in self.schema.tables:
                    self._positions[table.name] = (
                        int(
                            cursor.execute(
                                f"SELECT COALESCE(MAX({quote_identifier(_POSITION_COLUMN)}), -1) "
                                f"FROM {quote_identifier(table.name)}"
                            ).fetchone()[0]
                        )
                        + 1
                    )
                    for column in table.columns:
                        self._index_column(cursor, table, column.name)
                cursor.execute("COMMIT")
            except BaseException:
                cursor.execute("ROLLBACK")
                self._reload_counters()
                raise
            self._version += 1

    def _index_column(
        self, cursor: sqlite3.Cursor, table: TableSchema, column: str
    ) -> None:
        ref = ColumnRef(table.name, column)
        dtype = table.column(column).dtype
        rows = cursor.execute(
            f"SELECT {quote_identifier(_POSITION_COLUMN)}, {quote_identifier(column)} "
            f"FROM {quote_identifier(table.name)} ORDER BY {quote_identifier(_POSITION_COLUMN)}"
        ).fetchall()
        indexed = 0
        tokens_total = 0
        for position, stored in rows:
            tokens = tokenize_value(coerce(stored, dtype))
            if not tokens:
                continue
            indexed += 1
            tokens_total += len(tokens)
            self._index_tokens(cursor, table.name, column, position, tokens)
        cursor.execute(
            'UPDATE "_quest_fields" SET indexed = ?, tokens = ? '
            "WHERE tbl = ? AND col = ?",
            (indexed, tokens_total, table.name, column),
        )
        self._field_sizes[ref] = indexed

    # -- batched, journaled mutation ---------------------------------------

    def _pk_exists(self, table: str, key: tuple[Any, ...]) -> bool:
        schema = self._table_schema(table)
        where = " AND ".join(
            f"{quote_identifier(name)} = ?" for name in schema.primary_key
        )
        with self._lock:
            row = self._connection.execute(
                f"SELECT 1 FROM {quote_identifier(table)} WHERE {where}",
                [_encode(part) for part in key],
            ).fetchone()
        return row is not None

    def _persist_applied_seq(self, cursor: sqlite3.Cursor, seq: int) -> None:
        if self._has_meta:
            cursor.execute(
                'UPDATE "_quest_meta" SET value = ? WHERE key = ?',
                (seq, "applied_seq"),
            )

    def _apply_add_rows(
        self, table: str, rows: Sequence[Row], seq: int
    ) -> None:
        table_schema = self._table_schema(table)
        with self._lock:
            cursor = self._connection.cursor()
            cursor.execute("BEGIN")
            try:
                for row in rows:
                    self._insert_row(cursor, table_schema, row)
                # The applied sequence number commits with the rows: a
                # crash either keeps both or neither, so replay resumes
                # at exactly the right record.
                self._persist_applied_seq(cursor, seq)
                cursor.execute("COMMIT")
            except BaseException:
                cursor.execute("ROLLBACK")
                self._reload_counters()
                raise
            self._version += 1

    def _apply_delete_rows(
        self, table: str, keys: Sequence[tuple[Any, ...]], seq: int
    ) -> int:
        """Delete rows and unindex their tokens, one transaction.

        The stored row is read back first so its token streams can be
        removed symmetrically to how :meth:`_insert_row` added them —
        posting rows deleted by position, ``_quest_fields`` counters
        decremented per tokenised column — keeping scores bit-identical
        to the memory backend's tombstone unindexing. Positions are
        never reused (``_reload_counters`` advances past ``MAX(pos)``).
        """
        table_schema = self._table_schema(table)
        where = " AND ".join(
            f"{quote_identifier(name)} = ?" for name in table_schema.primary_key
        )
        column_list = ", ".join(
            [quote_identifier(column.name) for column in table_schema.columns]
            + [quote_identifier(_POSITION_COLUMN)]
        )
        deleted = 0
        with self._lock:
            cursor = self._connection.cursor()
            cursor.execute("BEGIN")
            try:
                for key in keys:
                    parameters = [_encode(part) for part in key]
                    row = cursor.execute(
                        f"SELECT {column_list} FROM {quote_identifier(table)} "
                        f"WHERE {where}",
                        parameters,
                    ).fetchone()
                    if row is None:  # absent: journaled replay stays idempotent
                        continue
                    position = int(row[-1])
                    for column, stored in zip(table_schema.columns, row):
                        tokens = tokenize_value(coerce(stored, column.dtype))
                        if not tokens:
                            continue
                        cursor.execute(
                            'UPDATE "_quest_fields" SET indexed = indexed - 1, '
                            "tokens = tokens - ? WHERE tbl = ? AND col = ?",
                            (len(tokens), table, column.name),
                        )
                        self._field_sizes[ColumnRef(table, column.name)] -= 1
                    cursor.execute(
                        'DELETE FROM "_quest_postings" WHERE tbl = ? AND pos = ?',
                        (table, position),
                    )
                    if self._fts_enabled:
                        cursor.execute(
                            'DELETE FROM "_quest_fts" WHERE tbl = ? AND pos = ?',
                            (table, position),
                        )
                    cursor.execute(
                        f"DELETE FROM {quote_identifier(table)} WHERE {where}",
                        parameters,
                    )
                    deleted += 1
                self._persist_applied_seq(cursor, seq)
                cursor.execute("COMMIT")
            except BaseException:
                cursor.execute("ROLLBACK")
                self._reload_counters()
                raise
            self._version += 1
        return deleted

    # -- row access --------------------------------------------------------

    def table_rows(self, table: str) -> list[Row]:
        table_schema = self._table_schema(table)
        column_list = ", ".join(quote_identifier(column.name) for column in table_schema.columns)
        with self._lock:
            fetched = self._connection.execute(
                f"SELECT {column_list} FROM {quote_identifier(table)} "
                f"ORDER BY {quote_identifier(_POSITION_COLUMN)}"
            ).fetchall()
        dtypes = [column.dtype for column in table_schema.columns]
        return [
            tuple(coerce(value, dtype) for value, dtype in zip(row, dtypes))
            for row in fetched
        ]

    def row_count(self, table: str) -> int:
        self._table_schema(table)
        with self._lock:
            row = self._connection.execute(
                f"SELECT COUNT(*) FROM {quote_identifier(table)}"
            ).fetchone()
        return int(row[0])

    def column_values(self, ref: ColumnRef) -> list[Any]:
        dtype = self._table_schema(ref.table).column(ref.column).dtype
        with self._lock:
            fetched = self._connection.execute(
                f"SELECT {quote_identifier(ref.column)} FROM {quote_identifier(ref.table)} "
                f"ORDER BY {quote_identifier(_POSITION_COLUMN)}"
            ).fetchall()
        return [coerce(row[0], dtype) for row in fetched]

    # -- full-text search --------------------------------------------------

    def _idf(self, field_count: int) -> float:
        # Same expression as FullTextIndex._idf, over the same integers:
        # scores stay bit-identical across backends.
        return math.log(1.0 + self._n_fields / field_count)

    def _read_sql(self, thunk, label: str):
        """Run one read-path SQL operation with the resilience wrapping.

        Every read funnels through here: the ``storage.query`` fault
        point fires first (chaos tests inject latency or
        ``OperationalError`` schedules), transient
        ``sqlite3.OperationalError`` is retried on the bounded
        jittered-exponential schedule, and every final outcome lands in
        the circuit breaker — failures push it toward open, successes
        (including half-open probes) heal it. Non-transient SQLite errors
        are wrapped into :class:`ExecutionError` as before.
        """

        def attempt():
            faults.fire("storage.query")
            return thunk()

        try:
            result = self._retry.call(
                attempt,
                retry_on=(sqlite3.OperationalError,),
                on_retry=lambda _exc, _n: self.breaker.record_failure(),
            )
        except sqlite3.Error as exc:
            self.breaker.record_failure()
            raise ExecutionError(f"sqlite error {label}: {exc}") from exc
        self.breaker.record_success()
        return result

    def _check_pushdown_circuit(self) -> None:
        """Fast-fail an *optional* pushdown surface while the circuit is open.

        The pipeline normally routes around an open breaker before ever
        calling these surfaces (see ``_pushdown_allowed`` in the stages);
        this guard covers direct callers. It reads the state without
        consuming a half-open probe slot — probes are admitted by the
        pipeline's ``allow()`` call.
        """
        if self.breaker.state == "open":
            raise CircuitOpenError(self.breaker.name)

    def attribute_scores(self, keyword: str) -> dict[ColumnRef, float]:
        """TF-IDF relevance per attribute, from SQL-aggregated counts."""
        term = keyword.casefold()

        def fetch():
            with self._lock:
                return self._connection.execute(
                    'SELECT tbl, col, COUNT(*) FROM "_quest_postings" '
                    "WHERE term = ? GROUP BY tbl, col",
                    (term,),
                ).fetchall()

        grouped = self._read_sql(fetch, f"scoring {term!r}")
        if not grouped:
            return {}
        idf = self._idf(len(grouped))
        scores: dict[ColumnRef, float] = {}
        for tbl, col, count in grouped:
            ref = ColumnRef(tbl, col)
            field_size = self._field_sizes.get(ref, 0)
            if field_size == 0:
                continue
            scores[ref] = (count / field_size) * idf
        return scores

    def attribute_scores_many(
        self, keywords: Sequence[str]
    ) -> list[dict[ColumnRef, float]]:
        """Batched :meth:`attribute_scores`: one grouped SQL query for the
        whole keyword list instead of one round trip per keyword."""
        terms = [keyword.casefold() for keyword in keywords]
        unique = list(dict.fromkeys(terms))
        if not unique:
            return []
        placeholders = ", ".join("?" * len(unique))

        def fetch():
            with self._lock:
                return self._connection.execute(
                    'SELECT term, tbl, col, COUNT(*) FROM "_quest_postings" '
                    f"WHERE term IN ({placeholders}) GROUP BY term, tbl, col",
                    unique,
                ).fetchall()

        grouped = self._read_sql(fetch, "batch scoring")
        entries: dict[str, list[tuple[str, str, int]]] = {t: [] for t in unique}
        for term, tbl, col, count in grouped:
            entries[term].append((tbl, col, count))
        by_term: dict[str, dict[ColumnRef, float]] = {}
        for term in unique:
            rows = entries[term]
            if not rows:
                by_term[term] = {}
                continue
            # Same integers, same operations as attribute_scores: the
            # per-term entry count feeds the idf, count / field_size the tf.
            idf = self._idf(len(rows))
            scores: dict[ColumnRef, float] = {}
            for tbl, col, count in rows:
                ref = ColumnRef(tbl, col)
                field_size = self._field_sizes.get(ref, 0)
                if field_size == 0:
                    continue
                scores[ref] = (count / field_size) * idf
            by_term[term] = scores
        return [by_term[term] for term in terms]

    def score(self, keyword: str, ref: ColumnRef) -> float:
        term = keyword.casefold()
        field_size = self._field_sizes.get(ref, 0)
        if field_size == 0:
            return 0.0

        def fetch():
            with self._lock:
                matches = self._connection.execute(
                    'SELECT COUNT(*) FROM "_quest_postings" '
                    "WHERE term = ? AND tbl = ? AND col = ?",
                    (term, ref.table, ref.column),
                ).fetchone()[0]
                if not matches:
                    return 0, 0
                fields = self._connection.execute(
                    'SELECT COUNT(*) FROM (SELECT 1 FROM "_quest_postings" '
                    "WHERE term = ? GROUP BY tbl, col)",
                    (term,),
                ).fetchone()[0]
            return matches, fields

        matches, fields = self._read_sql(fetch, f"scoring {term!r}")
        if not matches:
            return 0.0
        return (matches / field_size) * self._idf(fields)

    def selectivity(self, keyword: str, ref: ColumnRef) -> float:
        field_size = self._field_sizes.get(ref, 0)
        if field_size == 0:
            return 0.0

        def fetch():
            with self._lock:
                return self._connection.execute(
                    'SELECT COUNT(*) FROM "_quest_postings" '
                    "WHERE term = ? AND tbl = ? AND col = ?",
                    (keyword.casefold(), ref.table, ref.column),
                ).fetchone()[0]

        return self._read_sql(fetch, "selectivity") / field_size

    def matching_row_positions(self, keyword: str, ref: ColumnRef) -> list[int]:
        term = keyword.casefold()

        def fetch():
            with self._lock:
                if self._fts_enabled and _FTS_TERM_RE.fullmatch(term):
                    return self._connection.execute(
                        'SELECT pos FROM "_quest_fts" '
                        'WHERE "_quest_fts" MATCH ? AND tbl = ? AND col = ? '
                        "ORDER BY pos",
                        (f'doc:"{term}"', ref.table, ref.column),
                    ).fetchall()
                return self._connection.execute(
                    'SELECT pos FROM "_quest_postings" '
                    "WHERE term = ? AND tbl = ? AND col = ? ORDER BY pos",
                    (term, ref.table, ref.column),
                ).fetchall()

        rows = self._read_sql(fetch, f"matching positions for {term!r}")
        return [int(row[0]) for row in rows]

    @property
    def fts_enabled(self) -> bool:
        """Whether the FTS5 retrieval accelerator is active."""
        return self._fts_enabled

    # -- schema-graph pushdown ---------------------------------------------

    def sync_schema_graph(self, graph: Any) -> None:
        """Mirror *graph* into the ``_quest_graph_edges`` relation.

        One row per edge direction — ``(src, dst, weight)`` with nodes
        keyed by ``str(ColumnRef)`` — so reachability and path
        enumeration run as plain SQL over an adjacency relation. The
        mirror is keyed on (graph identity, topology revision) and
        rebuilt only when either moves; re-syncing an unchanged graph is
        one tuple comparison. The mirror is derived state: refreshing it
        does NOT bump :attr:`version` (no instance data changed).
        """
        key = (id(graph), getattr(graph, "version", 0))
        with self._lock:
            if self._graph_sync == key:
                return
            rows = [
                (str(edge.left), str(edge.right), float(edge.weight))
                for edge in graph.edges
            ]
            cursor = self._connection.cursor()
            cursor.execute("BEGIN")
            try:
                cursor.execute(
                    'CREATE TABLE IF NOT EXISTS "_quest_graph_edges" ('
                    "src TEXT NOT NULL, dst TEXT NOT NULL, "
                    "weight REAL NOT NULL, PRIMARY KEY (src, dst))"
                )
                cursor.execute('DELETE FROM "_quest_graph_edges"')
                cursor.executemany(
                    'INSERT INTO "_quest_graph_edges" (src, dst, weight) '
                    "VALUES (?, ?, ?)",
                    rows + [(dst, src, weight) for src, dst, weight in rows],
                )
                cursor.execute("COMMIT")
            except BaseException:
                cursor.execute("ROLLBACK")
                raise
            self._graph_sync = key

    def connected_nodes(self, graph: Any, start: Any) -> set:
        """Reachable nodes by recursive CTE over the mirrored edges."""
        compact = graph.compact()
        if start not in compact.index:
            return set()
        self._check_pushdown_circuit()
        self.sync_schema_graph(graph)

        def fetch():
            with self._lock:
                return self._connection.execute(
                    "WITH RECURSIVE reach(node) AS ("
                    "  SELECT ?"
                    "  UNION"
                    '  SELECT e.dst FROM "_quest_graph_edges" e'
                    "  JOIN reach r ON e.src = r.node"
                    ") SELECT node FROM reach",
                    (str(start),),
                ).fetchall()

        fetched = self._read_sql(fetch, "computing reachability")
        by_name = {str(node): node for node in compact.nodes}
        return {by_name[name] for (name,) in fetched if name in by_name}

    def join_path_candidates(
        self,
        graph: Any,
        pairs: Sequence[tuple[ColumnRef, ColumnRef]],
        k: int,
        max_hops: int,
    ) -> list[list[tuple[tuple[str, ...], float]]]:
        """Candidate join paths by bounded recursive CTE + window ranking.

        Same contract (and identical output, cost for cost) as
        :func:`repro.steiner.paths.enumerate_join_paths`: the recursion
        accumulates ``p.cost + e.weight`` — the contract's left-to-right
        IEEE-754 fold — the visited-set is the ``/a/b/`` path string, and
        ``ROW_NUMBER() OVER (PARTITION BY pair ORDER BY cost, path)``
        keeps the k cheapest per pair engine-side.
        """
        from repro.errors import SteinerError
        from repro.steiner.paths import decode_path

        if k <= 0:
            raise SteinerError(f"k must be positive, got {k}")
        if max_hops < 0:
            raise SteinerError(f"max_hops must be non-negative, got {max_hops}")
        compact = graph.compact()
        for source, target in pairs:
            if source not in compact.index or target not in compact.index:
                missing = source if source not in compact.index else target
                raise SteinerError(f"unknown node: {missing}")
        if not pairs:
            return []
        self.sync_schema_graph(graph)
        endpoint_rows = ", ".join(["(?, ?, ?)"] * len(pairs))
        parameters: list[Any] = []
        for pair_id, (source, target) in enumerate(pairs):
            parameters.extend((pair_id, str(source), str(target)))
        sql = (
            "WITH RECURSIVE"
            f" endpoints(pair_id, src, dst) AS (VALUES {endpoint_rows}),"
            " paths(pair_id, dst, node, path, cost, hops) AS ("
            "  SELECT pair_id, dst, src, '/' || src || '/', 0.0, 0"
            "  FROM endpoints"
            "  UNION ALL"
            "  SELECT p.pair_id, p.dst, e.dst, p.path || e.dst || '/',"
            "         p.cost + e.weight, p.hops + 1"
            '  FROM paths p JOIN "_quest_graph_edges" e ON e.src = p.node'
            "  WHERE p.hops < ?"
            "    AND instr(p.path, '/' || e.dst || '/') = 0"
            " ),"
            " ranked AS ("
            "  SELECT pair_id, path, cost,"
            "         ROW_NUMBER() OVER ("
            "           PARTITION BY pair_id ORDER BY cost, path"
            "         ) AS rank"
            "  FROM paths WHERE node = dst"
            " )"
            " SELECT pair_id, path, cost FROM ranked"
            " WHERE rank <= ? ORDER BY pair_id, rank"
        )
        parameters.extend((max_hops, k))
        self._check_pushdown_circuit()

        def fetch():
            with self._lock:
                return self._connection.execute(sql, parameters).fetchall()

        fetched = self._read_sql(fetch, "enumerating join paths")
        results: list[list[tuple[tuple[str, ...], float]]] = [
            [] for _ in pairs
        ]
        for pair_id, path, cost in fetched:
            results[int(pair_id)].append((decode_path(path), float(cost)))
        return results

    # -- execution ---------------------------------------------------------

    def _prepare(self, query: SelectQuery) -> tuple[str, tuple[tuple[str, DataType], ...]]:
        """Validate, expand and render *query* for SQLite execution."""
        for predicate in query.predicates:
            if predicate.value is None or predicate.op in (
                Comparison.CONTAINS,
                Comparison.LIKE,
            ):
                continue
            dtype = self.schema.table(query.table_of(predicate.alias)).column(
                predicate.column
            ).dtype
            # Every cross-type comparison is rejected eagerly. Ordering
            # mismatches raise in the in-memory executor too; EQ/NE
            # mismatches are silent there (never/always true per non-null
            # row) but cannot be reproduced here — SQLite's type affinity
            # would coerce e.g. the '1994' in ``year = '1994'`` and
            # *match*, and dates stored as ISO text would equal str
            # constants. Failing loudly beats silently diverging.
            if not isinstance(predicate.value, _COMPARABLE[dtype]):
                raise ExecutionError(
                    f"type mismatch evaluating {predicate}: {predicate.value!r}"
                )
        if query.projection:
            targets = list(query.projection)
            prepared = query
        else:
            # The in-memory executor projects every column of every alias
            # (and applies DISTINCT to those full-width rows); expanding
            # the projection reproduces that, including column labels.
            targets = [
                (alias, column)
                for alias in query.aliases
                for column in self.schema.table(query.table_of(alias)).column_names
            ]
            prepared = replace(query, projection=tuple(targets))
        dtypes = tuple(
            (
                f"{alias}.{column}",
                self.schema.table(query.table_of(alias)).column(column).dtype,
            )
            for alias, column in targets
        )
        return render_sql(prepared, dialect="sqlite", schema=self.schema), dtypes

    def execute(self, query: SelectQuery) -> ResultSet:
        sql, columns = self._prepare(query)

        def fetch():
            with self._lock:
                return self._connection.execute(sql).fetchall()

        fetched = self._read_sql(fetch, f"for {sql!r}")
        dtypes = [dtype for _name, dtype in columns]
        rows = [
            tuple(coerce(value, dtype) for value, dtype in zip(row, dtypes))
            for row in fetched
        ]
        return ResultSet(tuple(name for name, _dtype in columns), rows)

    def result_count(self, query: SelectQuery, limit: int | None = None) -> int:
        """Count results engine-side — no rows cross the boundary.

        With *limit*, the scan stops after that many rows (``COUNT(*)``
        over a ``LIMIT`` subquery): the bounded probe behind the explain
        stage's "at least N rows?" filter, where stopping at N beats
        counting a large result exactly.
        """
        sql, _columns = self._prepare(query)
        if limit is not None:
            counted = f"SELECT COUNT(*) FROM (SELECT * FROM ({sql}) LIMIT {int(limit)})"
        else:
            counted = f"SELECT COUNT(*) FROM ({sql})"

        def fetch():
            with self._lock:
                return self._connection.execute(counted).fetchone()

        row = self._read_sql(fetch, f"for {sql!r}")
        return int(row[0])

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __repr__(self) -> str:
        fts = "fts5" if self._fts_enabled else "emulated"
        return (
            f"SQLiteBackend({self.schema.name!r}, path={self.path!r}, "
            f"index={fts})"
        )
