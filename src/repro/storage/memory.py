"""The in-memory storage backend: the original substrate, behind the protocol.

``MemoryBackend`` is the extraction of the ``Database`` / ``executor`` /
``FullTextIndex`` trio the engine was originally hard-wired to. It owns
nothing new — it binds the three together and exposes them through the
:class:`~repro.storage.base.StorageBackend` surface, so existing code
keeps its exact behaviour (and its object identities: the wrapped
``Database`` stays reachable for the instance-graph baselines and tests).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.db.database import Database
from repro.db.executor import ResultSet, execute
from repro.db.fulltext import FullTextIndex
from repro.db.query import SelectQuery
from repro.db.schema import ColumnRef
from repro.db.table import Row
from repro.storage.base import StorageBackend

__all__ = ["MemoryBackend"]


class MemoryBackend(StorageBackend):
    """Relations stored as Python tuples, searched by the local executor."""

    name = "memory"

    def __init__(self, database: Database, fulltext: FullTextIndex | None = None) -> None:
        super().__init__(database.schema)
        self.database = database
        self.fulltext = fulltext if fulltext is not None else FullTextIndex(database)

    @classmethod
    def from_database(cls, database: Database, **kwargs: Any) -> "MemoryBackend":
        return cls(database, **kwargs)

    # -- row access --------------------------------------------------------

    def table_rows(self, table: str) -> list[Row]:
        return self.database.table(table).rows

    def row_count(self, table: str) -> int:
        return len(self.database.table(table))

    def column_values(self, ref: ColumnRef) -> list[Any]:
        return self.database.column_values(ref)

    # -- mutation ----------------------------------------------------------

    @property
    def version(self) -> int:
        return self.database.version

    def insert(self, table: str, values: Mapping[str, Any] | Sequence[Any]) -> Row:
        # The full-text index refreshes lazily off the database's mutation
        # counter, so no explicit invalidation is needed here.
        return self.database.insert(table, values)

    def insert_many(
        self, table: str, rows: Iterable[Mapping[str, Any] | Sequence[Any]]
    ) -> int:
        return self.database.insert_many(table, rows)

    def refresh(self) -> None:
        self.fulltext.refresh()

    # -- batched, journaled mutation ---------------------------------------

    def _validate_add_rows(
        self, table: str, rows: Sequence[Mapping[str, Any] | Sequence[Any]]
    ) -> list[Row]:
        return self.database.table(table).prepare_rows(rows)

    def _pk_exists(self, table: str, key: tuple[Any, ...]) -> bool:
        return self.database.table(table).get(key) is not None

    def _apply_add_rows(
        self, table: str, rows: Sequence[Row], seq: int
    ) -> None:
        # Table mutation and index refresh commit under the index lock,
        # so a concurrent search (whose read path takes the same lock
        # for its version check) observes the pre-batch or post-batch
        # rankings — never a torn intermediate where the rows are stored
        # but unindexed.
        with self.fulltext._lock:
            self.database.table(table).apply_prepared(rows)
            self.fulltext.refresh()

    def _apply_delete_rows(
        self, table: str, keys: Sequence[tuple[Any, ...]], seq: int
    ) -> int:
        with self.fulltext._lock:
            count = self.database.table(table).delete_rows(keys)
            self.fulltext.refresh()
        return count

    # -- full-text search --------------------------------------------------

    def attribute_scores(self, keyword: str) -> dict[ColumnRef, float]:
        return self.fulltext.attribute_scores(keyword)

    def attribute_scores_many(
        self, keywords: Sequence[str]
    ) -> list[dict[ColumnRef, float]]:
        return self.fulltext.attribute_scores_many(keywords)

    def emission_block(
        self, keywords: Sequence[str], refs: Sequence[ColumnRef]
    ) -> np.ndarray:
        return self.fulltext.emission_block(keywords, refs)

    # -- index artifacts ---------------------------------------------------

    def save_index(self, path: str | Path) -> bool:
        """Persist the full-text index as a ``.npz`` artifact.

        The artifact is stamped with the backend's applied journal
        sequence number as its *generation* and published atomically
        (temp + fsync + rename) — see :meth:`FullTextIndex.save`.
        """
        self.fulltext.save(path, generation=self._applied_seq)
        return True

    def load_index(self, path: str | Path, mmap: bool = False) -> bool:
        """Replace the index with the artifact at *path* (validated
        against the wrapped database — see :meth:`FullTextIndex.load`).
        ``mmap=True`` maps the arrays instead of materialising them."""
        self.fulltext = FullTextIndex.load(
            path, self.database, columnar=self.fulltext.columnar, mmap=mmap
        )
        return True

    def maybe_reload_index(self, path: str | Path, mmap: bool = False) -> bool:
        """Attach the artifact at *path* iff it is a *newer* generation.

        The warm-reader republish hook: a pinned reader stays on the
        generation it has open (its mapped inode survives the rename)
        and calls this between requests; the swap happens only when the
        published artifact's generation advanced past the attached one
        and the artifact validates in full. Returns ``True`` on swap.
        """
        published = FullTextIndex.peek_generation(path)
        if published is None or published <= self.fulltext.generation:
            return False
        return self.load_index(path, mmap=mmap)

    def score(self, keyword: str, ref: ColumnRef) -> float:
        return self.fulltext.score(keyword, ref)

    def selectivity(self, keyword: str, ref: ColumnRef) -> float:
        return self.fulltext.selectivity(keyword, ref)

    def matching_row_positions(self, keyword: str, ref: ColumnRef) -> list[int]:
        return self.fulltext.matching_row_positions(keyword, ref)

    # -- execution ---------------------------------------------------------

    def execute(self, query: SelectQuery) -> ResultSet:
        return execute(self.database, query)
