"""The storage-backend contract: everything QUEST asks of its DBMS.

QUEST is "conceived as a tool working on top of a traditional DBMS": the
engine needs a schema catalog, a full-text search function it can turn
into emission scores, a way to execute the generated SQL, and instance
statistics for the backward step's edge weights. :class:`StorageBackend`
names exactly that surface, so the whole engine — wrappers, pipeline,
datasets, evaluation harness — is written against the protocol rather
than against one concrete store.

Two implementations ship: :class:`~repro.storage.memory.MemoryBackend`
(the original in-memory ``Database`` + executor + ``FullTextIndex`` trio)
and :class:`~repro.storage.sqlite.SQLiteBackend` (relations persisted to
SQLite, SQL executed by SQLite, emission scores served from an inverted
index stored in SQLite). Backends guarantee *score parity*: for the same
loaded data, full-text scores, statistics and query result counts are
identical across backends, so rankings never depend on where the bytes
live (see ARCHITECTURE.md, "Storage backends").
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.db.catalog import Catalog
from repro.db.executor import ResultSet
from repro.db.query import SelectQuery
from repro.db.schema import ColumnRef, Schema
from repro.db.table import Row

__all__ = ["StorageBackend"]


class StorageBackend(abc.ABC):
    """One engine's view of wherever the relations actually live.

    The surface splits into five concerns, mirroring the paper's setup
    and run-time phases:

    - **catalog** — schema plus lazily-computed instance statistics;
    - **row access** — ordered rows and column extensions (what the
      statistics and the graph baselines read);
    - **full-text search** — the keyword-vs-attribute ranking function
      emission probabilities are normalised from;
    - **execution** — running generated :class:`SelectQuery` plans;
    - **mutation** — inserts plus a refresh hook keeping derived indexes
      correct, mirroring the Steiner cache's ``add_edge`` invalidation.
    """

    #: Registry name of the backend ("memory", "sqlite", ...).
    name: str = "backend"

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._catalog: Catalog | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def from_database(cls, database: Any, **kwargs: Any) -> "StorageBackend":
        """Build a backend holding the contents of an in-memory database."""

    # -- catalog -----------------------------------------------------------

    @property
    def catalog(self) -> Catalog:
        """The source catalog (statistics computed through this backend)."""
        if self._catalog is None:
            self._catalog = Catalog(self.schema, self)
        return self._catalog

    # -- row access --------------------------------------------------------

    @abc.abstractmethod
    def table_rows(self, table: str) -> list[Row]:
        """All rows of *table*, as typed tuples in insertion order."""

    @abc.abstractmethod
    def row_count(self, table: str) -> int:
        """Number of tuples stored in *table*."""

    def column_values(self, ref: ColumnRef) -> list[Any]:
        """All values of the referenced column, in row order."""
        position = self.schema.table(ref.table).column_names.index(ref.column)
        return [row[position] for row in self.table_rows(ref.table)]

    def total_rows(self) -> int:
        """Total number of tuples stored across all tables."""
        return sum(self.row_count(table.name) for table in self.schema.tables)

    # -- mutation ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter.

        Consumers caching anything derived from the instance (the
        wrappers' emission-vector LRU) compare this between reads and
        invalidate on change — the storage-layer mirror of the Steiner
        cache's ``add_edge`` invalidation. Static sources may keep the
        default constant.
        """
        return 0

    @abc.abstractmethod
    def insert(self, table: str, values: Mapping[str, Any] | Sequence[Any]) -> Row:
        """Insert one row into *table*; returns the stored (typed) tuple.

        Implementations keep their full-text structures consistent with
        the insert, so searches after a mutation see the new rows.
        """

    def insert_many(
        self, table: str, rows: Iterable[Mapping[str, Any] | Sequence[Any]]
    ) -> int:
        """Bulk-insert rows into *table*; returns the number inserted."""
        count = 0
        for values in rows:
            self.insert(table, values)
            count += 1
        return count

    @abc.abstractmethod
    def refresh(self) -> None:
        """Re-derive full-text structures after out-of-band mutation.

        Inserts through the backend never require this; it exists for
        data that changed behind the backend's back (a shared in-memory
        ``Database`` mutated directly, a SQLite file written by another
        process).
        """

    # -- full-text search --------------------------------------------------

    @abc.abstractmethod
    def attribute_scores(self, keyword: str) -> dict[ColumnRef, float]:
        """TF-IDF relevance of *keyword* per attribute containing it."""

    def attribute_scores_many(
        self, keywords: Sequence[str]
    ) -> list[dict[ColumnRef, float]]:
        """Per-keyword :meth:`attribute_scores` for a whole query at once.

        The batched entry point of the forward stage's emission scoring:
        backends that can amortise work across keywords (the columnar
        in-memory index, one grouped SQL query on SQLite) override this;
        the default simply loops. Cell values are bit-identical to the
        per-keyword calls either way.
        """
        return [self.attribute_scores(keyword) for keyword in keywords]

    def emission_block(
        self, keywords: Sequence[str], refs: Sequence[ColumnRef]
    ) -> np.ndarray:
        """Dense ``(len(keywords), len(refs))`` score matrix.

        Row *i*, column *j* equals ``attribute_scores(keywords[i]).get(
        refs[j], 0.0)`` bit for bit — this is the array the vectorised
        emission path writes straight into the HMM's DOMAIN-state columns.
        """
        block = np.zeros((len(keywords), len(refs)))
        for i, scores in enumerate(self.attribute_scores_many(keywords)):
            if scores:
                block[i] = [scores.get(ref, 0.0) for ref in refs]
        return block

    # -- index artifacts ---------------------------------------------------

    def save_index(self, path: str | Path) -> bool:
        """Persist the backend's derived search index to *path*.

        Returns ``False`` when the backend has no separable index artifact
        (SQLite's inverted index already lives in its database file).
        """
        return False

    def load_index(self, path: str | Path) -> bool:
        """Re-attach a saved index artifact, skipping the build.

        Raises :class:`~repro.errors.IndexArtifactError` on a stale or
        foreign artifact; returns ``False`` when the backend does not use
        separable index artifacts.
        """
        return False

    @abc.abstractmethod
    def score(self, keyword: str, ref: ColumnRef) -> float:
        """Relevance of *keyword* for one attribute (0.0 when absent)."""

    @abc.abstractmethod
    def selectivity(self, keyword: str, ref: ColumnRef) -> float:
        """Fraction of the attribute's indexed values matching *keyword*."""

    @abc.abstractmethod
    def matching_row_positions(self, keyword: str, ref: ColumnRef) -> list[int]:
        """Sorted row positions whose ``ref.column`` contains *keyword*."""

    # -- execution ---------------------------------------------------------

    @abc.abstractmethod
    def execute(self, query: SelectQuery) -> ResultSet:
        """Evaluate *query* and materialise the results."""

    def result_count(self, query: SelectQuery) -> int:
        """Number of rows *query* yields (respecting DISTINCT and LIMIT).

        Backends that can count without materialising (SQLite's
        ``COUNT(*)`` pushdown) override this; the default executes and
        counts.
        """
        return len(self.execute(query))

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release any held resources (connections, file handles)."""

    def __enter__(self) -> "StorageBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.schema.name!r}, "
            f"rows={self.total_rows()})"
        )
