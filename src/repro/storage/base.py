"""The storage-backend contract: everything QUEST asks of its DBMS.

QUEST is "conceived as a tool working on top of a traditional DBMS": the
engine needs a schema catalog, a full-text search function it can turn
into emission scores, a way to execute the generated SQL, and instance
statistics for the backward step's edge weights. :class:`StorageBackend`
names exactly that surface, so the whole engine — wrappers, pipeline,
datasets, evaluation harness — is written against the protocol rather
than against one concrete store.

Two implementations ship: :class:`~repro.storage.memory.MemoryBackend`
(the original in-memory ``Database`` + executor + ``FullTextIndex`` trio)
and :class:`~repro.storage.sqlite.SQLiteBackend` (relations persisted to
SQLite, SQL executed by SQLite, emission scores served from an inverted
index stored in SQLite). Backends guarantee *score parity*: for the same
loaded data, full-text scores, statistics and query result counts are
identical across backends, so rankings never depend on where the bytes
live (see ARCHITECTURE.md, "Storage backends").
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro import faults
from repro.db.catalog import Catalog
from repro.db.executor import ResultSet
from repro.db.query import SelectQuery
from repro.db.schema import ColumnRef, Schema
from repro.db.table import Row, normalise_row
from repro.db.types import coerce
from repro.errors import IntegrityError
from repro.journal import MutationJournal, MutationRecord

__all__ = ["StorageBackend"]


class StorageBackend(abc.ABC):
    """One engine's view of wherever the relations actually live.

    The surface splits into five concerns, mirroring the paper's setup
    and run-time phases:

    - **catalog** — schema plus lazily-computed instance statistics;
    - **row access** — ordered rows and column extensions (what the
      statistics and the graph baselines read);
    - **full-text search** — the keyword-vs-attribute ranking function
      emission probabilities are normalised from;
    - **execution** — running generated :class:`SelectQuery` plans;
    - **mutation** — inserts plus a refresh hook keeping derived indexes
      correct, mirroring the Steiner cache's ``add_edge`` invalidation.
    """

    #: Registry name of the backend ("memory", "sqlite", ...).
    name: str = "backend"

    #: Whether the backend can evaluate schema-graph reachability and
    #: join-path enumeration engine-side (see :meth:`connected_nodes` /
    #: :meth:`join_path_candidates`). Backends without it still answer
    #: both through the shared in-memory implementations.
    supports_graph_pushdown: bool = False

    #: Whether :meth:`result_count` with a *limit* probes engine-side
    #: (``COUNT(*)`` over a ``LIMIT`` subquery) instead of materialising.
    supports_count_pushdown: bool = False

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._catalog: Catalog | None = None
        #: The attached write-ahead mutation journal (None = unjournaled;
        #: batched mutations then apply directly, without durability).
        self._journal: MutationJournal | None = None
        #: Last journal sequence number whose mutation has been applied.
        self._applied_seq = 0

    # -- construction ------------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def from_database(cls, database: Any, **kwargs: Any) -> "StorageBackend":
        """Build a backend holding the contents of an in-memory database."""

    # -- catalog -----------------------------------------------------------

    @property
    def catalog(self) -> Catalog:
        """The source catalog (statistics computed through this backend)."""
        if self._catalog is None:
            self._catalog = Catalog(self.schema, self)
        return self._catalog

    # -- row access --------------------------------------------------------

    @abc.abstractmethod
    def table_rows(self, table: str) -> list[Row]:
        """All rows of *table*, as typed tuples in insertion order."""

    @abc.abstractmethod
    def row_count(self, table: str) -> int:
        """Number of tuples stored in *table*."""

    def column_values(self, ref: ColumnRef) -> list[Any]:
        """All values of the referenced column, in row order."""
        position = self.schema.table(ref.table).column_names.index(ref.column)
        return [row[position] for row in self.table_rows(ref.table)]

    def total_rows(self) -> int:
        """Total number of tuples stored across all tables."""
        return sum(self.row_count(table.name) for table in self.schema.tables)

    # -- mutation ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter.

        Consumers caching anything derived from the instance (the
        wrappers' emission-vector LRU) compare this between reads and
        invalidate on change — the storage-layer mirror of the Steiner
        cache's ``add_edge`` invalidation. Static sources may keep the
        default constant.
        """
        return 0

    @abc.abstractmethod
    def insert(self, table: str, values: Mapping[str, Any] | Sequence[Any]) -> Row:
        """Insert one row into *table*; returns the stored (typed) tuple.

        Implementations keep their full-text structures consistent with
        the insert, so searches after a mutation see the new rows.
        """

    def insert_many(
        self, table: str, rows: Iterable[Mapping[str, Any] | Sequence[Any]]
    ) -> int:
        """Bulk-insert rows into *table*; returns the number inserted."""
        count = 0
        for values in rows:
            self.insert(table, values)
            count += 1
        return count

    @abc.abstractmethod
    def refresh(self) -> None:
        """Re-derive full-text structures after out-of-band mutation.

        Inserts through the backend never require this; it exists for
        data that changed behind the backend's back (a shared in-memory
        ``Database`` mutated directly, a SQLite file written by another
        process).
        """

    # -- batched, journaled mutation ---------------------------------------

    def add_rows(
        self, table: str, rows: Sequence[Mapping[str, Any] | Sequence[Any]]
    ) -> list[Row]:
        """Insert a batch into *table*, journal-first.

        The write path is **validate → journal → apply**: every row is
        normalised and checked before anything happens, the whole batch
        is appended (and fsynced) to the attached mutation journal, and
        only then applied — so the moment this method returns, the
        mutation both *happened* and *survives a crash*: replaying the
        journal after a ``kill -9`` reconstructs exactly the acknowledged
        state. Without a journal attached the apply runs directly.

        Applies are atomic with respect to concurrent searches:
        implementations publish either the pre-batch or post-batch
        rankings, never a torn intermediate.
        """
        normalised = self._validate_add_rows(table, rows)
        seq = self._journal_append("add", table, rows=[list(r) for r in normalised])
        self._apply_add_rows(table, normalised, seq)
        self._applied_seq = seq
        return normalised

    def delete_rows(
        self, table: str, keys: Sequence[tuple[Any, ...] | Any]
    ) -> int:
        """Delete the *table* rows behind *keys*, journal-first.

        Same **validate → journal → apply** discipline as
        :meth:`add_rows`. Absent keys are skipped (deletes are
        idempotent, which is what makes journal replay safe). Returns
        how many rows actually existed.
        """
        normalised = [self._normalise_key(table, key) for key in keys]
        seq = self._journal_append(
            "delete", table, keys=[list(k) for k in normalised]
        )
        count = self._apply_delete_rows(table, normalised, seq)
        self._applied_seq = seq
        return count

    def _journal_append(self, op: str, table: str, **payload: Any) -> int:
        if self._journal is None:
            return self._applied_seq + 1
        return self._journal.append(op, table, **payload)

    def _validate_add_rows(
        self, table: str, rows: Sequence[Mapping[str, Any] | Sequence[Any]]
    ) -> list[Row]:
        """Normalise and fully validate a batch (no application).

        The base implementation normalises and enforces PK non-NULL plus
        batch-local uniqueness; backends layer their stored-duplicate
        check on top via :meth:`_pk_exists`.
        """
        schema = self.schema.table(table)
        pk_positions = [schema.column_names.index(n) for n in schema.primary_key]
        normalised: list[Row] = []
        seen: set[tuple[Any, ...]] = set()
        for values in rows:
            row = normalise_row(schema, values)
            key = tuple(row[p] for p in pk_positions)
            if any(part is None for part in key):
                raise IntegrityError(f"{table}: primary key may not be NULL")
            if key in seen or self._pk_exists(table, key):
                raise IntegrityError(f"{table}: duplicate primary key {key!r}")
            seen.add(key)
            normalised.append(row)
        return normalised

    def _pk_exists(self, table: str, key: tuple[Any, ...]) -> bool:
        """Whether *key* is already stored in *table* (live rows only)."""
        raise NotImplementedError

    def _apply_add_rows(
        self, table: str, rows: Sequence[Row], seq: int
    ) -> None:
        """Apply a validated batch (guaranteed not to fail).

        *seq* is the journal sequence number this apply corresponds to;
        transactional backends persist it atomically with the rows so a
        crash can never leave "applied but not recorded as applied" (or
        vice versa) on disk.
        """
        raise NotImplementedError

    def _apply_delete_rows(
        self, table: str, keys: Sequence[tuple[Any, ...]], seq: int
    ) -> int:
        """Apply a batch of normalised-key deletes; returns rows removed."""
        raise NotImplementedError

    def _normalise_key(self, table: str, key: tuple[Any, ...] | Any) -> tuple[Any, ...]:
        """Coerce *key* to the primary key's declared column types.

        Journaled keys round-trip through JSON (tuples become lists,
        dates become ISO strings); this funnels them back through the
        shared type coercion so replay compares keys bit-identically.
        """
        schema = self.schema.table(table)
        if not isinstance(key, tuple):
            key = tuple(key) if isinstance(key, list) else (key,)
        primary = schema.primary_key
        if len(key) != len(primary):
            raise IntegrityError(
                f"{table}: primary key takes {len(primary)} values, "
                f"got {len(key)}"
            )
        dtypes = {column.name: column.dtype for column in schema.columns}
        return tuple(
            coerce(part, dtypes[name]) for part, name in zip(key, primary)
        )

    # -- journal lifecycle -------------------------------------------------

    @property
    def journal(self) -> MutationJournal | None:
        """The attached write-ahead mutation journal, if any."""
        return self._journal

    @property
    def applied_seq(self) -> int:
        """Last journal sequence number applied to the stored state."""
        return self._applied_seq

    def attach_journal(
        self, journal: MutationJournal, replay: bool = True
    ) -> int:
        """Attach *journal* so future batched mutations are journaled.

        With *replay* (the default), records past :attr:`applied_seq`
        are re-applied first — the recovery path that reconstructs
        acknowledged mutations after a crash. Returns how many records
        were replayed.
        """
        replayed = 0
        if replay:
            replayed = self.replay_journal(journal)
        self._journal = journal
        return replayed

    def replay_journal(
        self, journal: MutationJournal, up_to_seq: int | None = None
    ) -> int:
        """Re-apply journal records past :attr:`applied_seq`.

        Stops after *up_to_seq* when given (recovery uses this to bring
        the state exactly to a sealed artifact's generation before
        attempting the artifact load). Returns the number of records
        applied.
        """
        replayed = 0
        for record in journal.records(after_seq=self._applied_seq):
            if up_to_seq is not None and record.seq > up_to_seq:
                break
            faults.fire("journal.replay")
            self._replay_record(record)
            self._applied_seq = record.seq
            replayed += 1
        return replayed

    def _replay_record(self, record: MutationRecord) -> None:
        """Apply one journaled mutation without re-journaling it."""
        if record.op == "add":
            schema = self.schema.table(record.table)
            rows = [normalise_row(schema, values) for values in record.rows or []]
            self._apply_add_rows(record.table, rows, record.seq)  # questlint: disable=journal-discipline  # recovery replay: the record being applied was already journaled (it came *from* the journal)
        else:
            keys = [
                self._normalise_key(record.table, key)
                for key in record.keys or []
            ]
            self._apply_delete_rows(record.table, keys, record.seq)  # questlint: disable=journal-discipline  # recovery replay: the record being applied was already journaled (it came *from* the journal)

    # -- full-text search --------------------------------------------------

    @abc.abstractmethod
    def attribute_scores(self, keyword: str) -> dict[ColumnRef, float]:
        """TF-IDF relevance of *keyword* per attribute containing it."""

    def attribute_scores_many(
        self, keywords: Sequence[str]
    ) -> list[dict[ColumnRef, float]]:
        """Per-keyword :meth:`attribute_scores` for a whole query at once.

        The batched entry point of the forward stage's emission scoring:
        backends that can amortise work across keywords (the columnar
        in-memory index, one grouped SQL query on SQLite) override this;
        the default simply loops. Cell values are bit-identical to the
        per-keyword calls either way.
        """
        return [self.attribute_scores(keyword) for keyword in keywords]

    def emission_block(
        self, keywords: Sequence[str], refs: Sequence[ColumnRef]
    ) -> np.ndarray:
        """Dense ``(len(keywords), len(refs))`` score matrix.

        Row *i*, column *j* equals ``attribute_scores(keywords[i]).get(
        refs[j], 0.0)`` bit for bit — this is the array the vectorised
        emission path writes straight into the HMM's DOMAIN-state columns.
        """
        block = np.zeros((len(keywords), len(refs)))
        for i, scores in enumerate(self.attribute_scores_many(keywords)):
            if scores:
                block[i] = [scores.get(ref, 0.0) for ref in refs]
        return block

    # -- index artifacts ---------------------------------------------------

    def save_index(self, path: str | Path) -> bool:
        """Persist the backend's derived search index to *path*.

        Returns ``False`` when the backend has no separable index artifact
        (SQLite's inverted index already lives in its database file).
        """
        return False

    def load_index(self, path: str | Path, mmap: bool = False) -> bool:
        """Re-attach a saved index artifact, skipping the build.

        With ``mmap=True`` the artifact arrays are memory-mapped rather
        than materialised, so co-located processes attaching the same
        file share physical pages (the preforked serving tier's
        warm-start path). Raises
        :class:`~repro.errors.IndexArtifactError` on a stale or foreign
        artifact; returns ``False`` when the backend does not use
        separable index artifacts.
        """
        return False

    @abc.abstractmethod
    def score(self, keyword: str, ref: ColumnRef) -> float:
        """Relevance of *keyword* for one attribute (0.0 when absent)."""

    @abc.abstractmethod
    def selectivity(self, keyword: str, ref: ColumnRef) -> float:
        """Fraction of the attribute's indexed values matching *keyword*."""

    @abc.abstractmethod
    def matching_row_positions(self, keyword: str, ref: ColumnRef) -> list[int]:
        """Sorted row positions whose ``ref.column`` contains *keyword*."""

    # -- execution ---------------------------------------------------------

    @abc.abstractmethod
    def execute(self, query: SelectQuery) -> ResultSet:
        """Evaluate *query* and materialise the results."""

    def result_count(self, query: SelectQuery, limit: int | None = None) -> int:
        """Number of rows *query* yields (respecting DISTINCT and LIMIT).

        With *limit*, the count is bounded: the returned value is
        ``min(exact count, limit)`` — enough to answer "are there at
        least *limit* rows?" without counting further. Backends that can
        count without materialising (SQLite's ``COUNT(*)`` pushdown, with
        a ``LIMIT`` subquery for the bounded form) override this; the
        default executes and counts.
        """
        count = len(self.execute(query))
        return count if limit is None else min(count, limit)

    # -- schema-graph pushdown ---------------------------------------------

    def connected_nodes(self, graph: Any, start: Any) -> set:
        """Every schema-graph node reachable from *start*.

        The backward stage's connectivity prefilter. The default runs the
        shared in-memory traversal; backends with graph pushdown
        (:attr:`supports_graph_pushdown`) answer with a recursive CTE
        over an edge relation instead. Either way the returned set is
        identical — reachability has one answer.
        """
        compact = graph.compact()
        start_index = compact.index.get(start)
        if start_index is None:
            return set()
        seen = {start_index}
        frontier = [start_index]
        neighbors = compact.neighbors
        while frontier:
            current = frontier.pop()
            for neighbour, _weight, _edge in neighbors[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return {compact.nodes[i] for i in seen}

    def join_path_candidates(
        self,
        graph: Any,
        pairs: Sequence[tuple[ColumnRef, ColumnRef]],
        k: int,
        max_hops: int,
    ) -> list[list[tuple[tuple[str, ...], float]]]:
        """Up to *k* cheapest acyclic join paths per (source, target) pair.

        The candidate-enumeration contract of
        :mod:`repro.steiner.paths`: backends with graph pushdown push the
        enumeration into a bounded recursive CTE; the default delegates
        to the in-memory enumerator. Both orderings and costs are
        required to be identical (tested pair for pair on both backends).
        """
        from repro.steiner.paths import enumerate_join_paths

        return enumerate_join_paths(graph, pairs, k, max_hops)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release any held resources (connections, file handles)."""

    def __enter__(self) -> "StorageBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.schema.name!r}, "
            f"rows={self.total_rows()})"
        )
