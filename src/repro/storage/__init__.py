"""Pluggable storage backends: where the relations live is a deployment choice.

QUEST treats the DBMS as a black box that answers full-text ranking calls
and executes generated SQL; this package makes that boundary explicit.
:class:`StorageBackend` is the contract, :class:`MemoryBackend` is the
original in-memory substrate extracted behind it, and
:class:`SQLiteBackend` persists relations to SQLite with engine-side SQL
execution and an FTS-backed inverted index. Both report bit-identical
full-text scores and statistics for the same data, so rankings never
depend on the backend (the parity tests in ``tests/storage`` assert it
end to end).

Pick a backend by name::

    from repro.storage import create_backend

    backend = create_backend("sqlite", db, path="quest.db")
    engine = Quest(FullAccessWrapper(backend))
"""

from __future__ import annotations

from typing import Any

from repro.db.database import Database
from repro.errors import QuestError
from repro.storage.base import StorageBackend
from repro.storage.memory import MemoryBackend
from repro.storage.recovery import RecoveryReport, recover
from repro.storage.sqlite import SQLiteBackend

__all__ = [
    "BACKENDS",
    "MemoryBackend",
    "RecoveryReport",
    "SQLiteBackend",
    "StorageBackend",
    "as_backend",
    "create_backend",
    "recover",
]

#: Registry of available backends, keyed by the name loaders accept.
BACKENDS: dict[str, type[StorageBackend]] = {
    MemoryBackend.name: MemoryBackend,
    SQLiteBackend.name: SQLiteBackend,
}


def create_backend(
    name: str, database: Database, **kwargs: Any
) -> StorageBackend:
    """A named backend loaded with the contents of *database*.

    Args:
        name: a :data:`BACKENDS` key (``"memory"`` or ``"sqlite"``).
        database: the in-memory instance to serve (the memory backend
            wraps it; the SQLite backend copies it into SQLite).
        kwargs: backend-specific options (e.g. ``path=`` for SQLite).
    """
    try:
        factory = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise QuestError(f"unknown storage backend {name!r} (known: {known})") from None
    return factory.from_database(database, **kwargs)


def as_backend(source: Database | StorageBackend) -> StorageBackend:
    """Coerce *source* to a backend (databases wrap into memory backends)."""
    if isinstance(source, StorageBackend):
        return source
    if isinstance(source, Database):
        return MemoryBackend(source)
    raise TypeError(
        f"expected a Database or StorageBackend, got {type(source).__name__}"
    )
