"""Boot-time crash recovery: journal + sealed artifact → acknowledged state.

The live-mutation tier has three durable pieces — the seed data, the
write-ahead :class:`~repro.journal.MutationJournal`, and the atomically
republished index artifact (stamped with the journal *generation* it was
sealed at). After a crash, :func:`recover` stitches them back together:

1. **Open the journal.** A torn tail (a crash mid-append) is truncated;
   everything remaining is CRC-verified acknowledged history.
2. **Peek the artifact generation** ``g`` (a tolerant header-only read —
   a torn or missing artifact answers ``None`` and is simply rebuilt).
3. **Replay records ``seq <= g``** into the seed-loaded backend, bringing
   the stored state to exactly the snapshot the artifact describes.
4. **Attach the artifact.** Validation is strict (checksums, row and
   deletion counts, mutation counter); any
   :class:`~repro.errors.IndexArtifactError` falls back to an in-process
   rebuild — recovery never trusts a questionable artifact.
5. **Replay the remainder** (``seq > g``), firing the ``journal.replay``
   fault point per record, then attach the journal for future writes.

The invariant the chaos suite asserts: after recovery, rankings are
bit-identical to a clean rebuild over the acknowledged mutation history,
and no acknowledged write is ever lost.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.db.fulltext import FullTextIndex
from repro.errors import IndexArtifactError
from repro.journal import MutationJournal
from repro.storage.base import StorageBackend

__all__ = ["RecoveryReport", "recover"]


@dataclass(frozen=True)
class RecoveryReport:
    """What one :func:`recover` call did (for logs and assertions)."""

    #: Journal records re-applied before the artifact attach (``seq <= g``).
    replayed_to_artifact: int
    #: Journal records re-applied past the artifact generation.
    replayed_past_artifact: int
    #: Whether the sealed artifact attached cleanly (False = rebuilt).
    artifact_loaded: bool
    #: The generation the artifact claimed, if it was readable at all.
    artifact_generation: int | None
    #: Bytes of torn journal tail truncated on open.
    truncated_bytes: int

    @property
    def replayed(self) -> int:
        """Total journal records re-applied."""
        return self.replayed_to_artifact + self.replayed_past_artifact


def recover(
    backend: StorageBackend,
    journal_path: str | os.PathLike,
    artifact_path: str | os.PathLike | None = None,
    mmap: bool = False,
) -> RecoveryReport:
    """Reconstruct acknowledged state onto *backend* and attach the journal.

    *backend* holds the seed data (or, for a persistent backend like
    SQLite, its own durable state — its ``applied_seq`` then already
    points past everything stored, and replay picks up from there).
    *artifact_path* names the republished index artifact, when the
    deployment uses one; recovery degrades gracefully without it.

    Returns a :class:`RecoveryReport`; the backend is left with the
    journal attached, ready to acknowledge new writes.
    """
    journal = MutationJournal(journal_path)
    try:
        generation: int | None = None
        if artifact_path is not None and Path(artifact_path).exists():
            generation = FullTextIndex.peek_generation(artifact_path)
        replayed_to_artifact = 0
        loaded = False
        if generation is not None and generation > backend.applied_seq:
            replayed_to_artifact = backend.replay_journal(
                journal, up_to_seq=generation
            )
        if artifact_path is not None and generation is not None:
            try:
                loaded = backend.load_index(artifact_path, mmap=mmap)
            except IndexArtifactError:
                loaded = False  # stale/torn artifact: rebuild in process
        replayed_past_artifact = backend.replay_journal(journal)
        backend.attach_journal(journal, replay=False)
    except BaseException:
        journal.close()
        raise
    return RecoveryReport(
        replayed_to_artifact=replayed_to_artifact,
        replayed_past_artifact=replayed_past_artifact,
        artifact_loaded=loaded,
        artifact_generation=generation,
        truncated_bytes=journal.truncated_bytes,
    )
