"""A simulated validating user for feedback experiments.

The live demo collects feedback from real participants; experiments need a
reproducible substitute. The oracle knows the workload's gold
configurations and validates or rejects engine proposals accordingly, with
an optional noise rate (real users occasionally mis-validate).
"""

from __future__ import annotations

import random

from repro.core.configuration import Configuration
from repro.feedback.trainer import FeedbackTrainer

__all__ = ["SimulatedUser"]


class SimulatedUser:
    """Validates proposed configurations against gold mappings."""

    def __init__(
        self,
        gold: dict[tuple[str, ...], Configuration],
        noise: float = 0.0,
        seed: int = 7,
    ) -> None:
        """Args:
        gold: keyword tuple -> the configuration the user "means".
        noise: probability of flipping a verdict (0 = perfect user).
        seed: RNG seed for reproducible noise.
        """
        self.gold = dict(gold)
        self.noise = noise
        self._rng = random.Random(seed)

    def knows(self, keywords: tuple[str, ...]) -> bool:
        """Whether the oracle has a gold mapping for this query."""
        return keywords in self.gold

    def judge(self, keywords: tuple[str, ...], proposal: Configuration) -> bool:
        """True = validate, False = reject (possibly noisy)."""
        verdict = self.gold.get(keywords) == proposal
        if self.noise > 0.0 and self._rng.random() < self.noise:
            verdict = not verdict
        return verdict

    def teach(
        self,
        trainer: FeedbackTrainer,
        keywords: tuple[str, ...],
        proposals: list[Configuration],
    ) -> bool:
        """Review *proposals* like a demo participant would.

        The oracle validates the gold configuration if it appears in the
        list (teaching the trainer the right mapping) and rejects the top
        proposal otherwise. Returns whether a validation happened.
        """
        gold = self.gold.get(keywords)
        if gold is None:
            return False
        for proposal in proposals:
            if self.judge(keywords, proposal):
                trainer.validate(keywords, proposal)
                return True
        if proposals:
            trainer.reject(keywords, proposals[0])
        # Even after rejecting, a patient user shows the system the right
        # answer — the demo GUI lets participants pick the intended mapping.
        trainer.validate(keywords, gold)
        return True
