"""On-line training of the feedback HMM plus adaptive ignorance.

Implements the feedback-based operating mode: the model starts uniform
(maximum entropy — it has seen nothing), is updated from validated searches
(supervised counting, the degenerate-E-step case of the paper's on-line
E-M), and reports a suggested ``O_Cf`` that *decreases* as positive
feedback accumulates and *increases* when rejections arrive — mirroring the
adaptation policy described in the combiner section of the paper.
"""

from __future__ import annotations

from repro.core.configuration import Configuration
from repro.errors import TrainingError
from repro.feedback.store import FeedbackRecord, FeedbackStore
from repro.hmm.em import supervised_update
from repro.hmm.model import HiddenMarkovModel
from repro.hmm.states import StateSpace

__all__ = ["FeedbackTrainer", "adaptive_ignorance"]


def adaptive_ignorance(
    positive: int,
    negative: int,
    floor: float = 0.1,
    ceiling: float = 0.9,
    halving: float = 8.0,
    negative_penalty: float = 0.05,
) -> float:
    """Suggested ``O_Cf`` given the feedback tally.

    Starts at *ceiling* with no feedback, decays towards *floor* as
    positives accumulate (halving the excess every *halving* positives) and
    climbs back by *negative_penalty* per rejection — "this same parameter
    should be decreased when negative feedbacks are obtained" refers to the
    mode's *reliability*; the ignorance mass moves the opposite way.
    """
    if positive < 0 or negative < 0:
        raise TrainingError("feedback counts must be non-negative")
    decay = 0.5 ** (positive / halving)
    value = floor + (ceiling - floor) * decay + negative_penalty * negative
    return min(ceiling, max(floor, value))


class FeedbackTrainer:
    """Maintains the feedback HMM for one state space."""

    def __init__(
        self,
        states: StateSpace,
        store: FeedbackStore | None = None,
        learning_rate: float = 0.5,
    ) -> None:
        self.states = states
        self.store = store if store is not None else FeedbackStore()
        self.learning_rate = learning_rate
        self._model = HiddenMarkovModel.uniform(states)
        self._trained = False

    # -- recording -----------------------------------------------------------

    def _path_of(self, configuration: Configuration) -> list[int]:
        try:
            return [self.states.index(m.state) for m in configuration.mappings]
        except KeyError as exc:
            raise TrainingError(
                f"configuration references a state outside this schema: {exc}"
            ) from exc

    def observe(self, record: FeedbackRecord) -> None:
        """Ingest one feedback record, updating the model when positive."""
        self.store.add(record)
        if record.positive:
            path = self._path_of(record.configuration)
            self._model = supervised_update(
                self._model, [path], learning_rate=self.learning_rate
            )
            self._trained = True

    def validate(
        self, keywords: list[str] | tuple[str, ...], configuration: Configuration
    ) -> None:
        """Shorthand: record a positive validation and train on it."""
        self.observe(FeedbackRecord(tuple(keywords), configuration, positive=True))

    def reject(
        self, keywords: list[str] | tuple[str, ...], configuration: Configuration
    ) -> None:
        """Shorthand: record a rejection (affects only the ignorance)."""
        self.observe(FeedbackRecord(tuple(keywords), configuration, positive=False))

    def retrain(self) -> None:
        """Batch retrain from scratch over every stored positive record."""
        self._model = HiddenMarkovModel.uniform(self.states)
        positives = self.store.positives()
        if not positives:
            self._trained = False
            return
        paths = [self._path_of(r.configuration) for r in positives]
        self._model = supervised_update(self._model, paths, learning_rate=1.0)
        self._trained = True

    # -- outputs --------------------------------------------------------------

    @property
    def is_trained(self) -> bool:
        """Whether at least one positive record has been ingested."""
        return self._trained

    @property
    def model(self) -> HiddenMarkovModel:
        """The current feedback HMM (uniform before any training)."""
        return self._model

    def suggested_ignorance(self) -> float:
        """The adaptive ``O_Cf`` for the current feedback tally."""
        return adaptive_ignorance(
            self.store.positive_count(), self.store.negative_count()
        )

    def __repr__(self) -> str:
        return (
            f"FeedbackTrainer(records={len(self.store)}, "
            f"trained={self._trained}, O_Cf={self.suggested_ignorance():.3f})"
        )
