"""The feedback store: previous searches validated by the user.

Each record ties a keyword query to the configuration the user validated
(positive) or rejected (negative). Positive records are the training data
of the feedback HMM; the positive/negative balance drives the adaptive
``O_Cf`` ignorance schedule.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator

from repro.core.configuration import Configuration
from repro.errors import TrainingError
from repro.forksafe import register_lock_holder

__all__ = ["FeedbackRecord", "FeedbackStore"]


def _reset_store_lock(store: "FeedbackStore") -> None:
    store._lock = threading.Lock()


@dataclass(frozen=True)
class FeedbackRecord:
    """One validated (or rejected) search."""

    keywords: tuple[str, ...]
    configuration: Configuration
    positive: bool = True

    def __post_init__(self) -> None:
        if len(self.keywords) != len(self.configuration.mappings):
            raise TrainingError(
                "keyword count does not match the validated configuration"
            )


class FeedbackStore:
    """Append-only collection of feedback records.

    Thread-safe: the serving tier records validations while trainers
    iterate snapshots, so every access goes through an internal lock and
    iteration walks a point-in-time copy — a concurrent ``add`` never
    invalidates an in-progress loop.
    """

    def __init__(self) -> None:
        self._records: list[FeedbackRecord] = []
        self._lock = threading.Lock()
        register_lock_holder(self, _reset_store_lock)

    def add(self, record: FeedbackRecord) -> None:
        """Append one record."""
        with self._lock:
            self._records.append(record)

    def add_validation(
        self, keywords: list[str] | tuple[str, ...], configuration: Configuration
    ) -> FeedbackRecord:
        """Record that the user validated *configuration* for *keywords*."""
        record = FeedbackRecord(tuple(keywords), configuration, positive=True)
        self.add(record)
        return record

    def add_rejection(
        self, keywords: list[str] | tuple[str, ...], configuration: Configuration
    ) -> FeedbackRecord:
        """Record that the user rejected *configuration* for *keywords*."""
        record = FeedbackRecord(tuple(keywords), configuration, positive=False)
        self.add(record)
        return record

    # -- access --------------------------------------------------------------

    def snapshot(self) -> tuple[FeedbackRecord, ...]:
        """A point-in-time copy of every record, in insertion order."""
        with self._lock:
            return tuple(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[FeedbackRecord]:
        """Iterate a snapshot — safe against concurrent appends."""
        return iter(self.snapshot())

    def positives(self) -> list[FeedbackRecord]:
        """All validated searches (the training set)."""
        return [r for r in self.snapshot() if r.positive]

    def negatives(self) -> list[FeedbackRecord]:
        """All rejected proposals."""
        return [r for r in self.snapshot() if not r.positive]

    def positive_count(self) -> int:
        """Number of validated searches."""
        return sum(1 for r in self.snapshot() if r.positive)

    def negative_count(self) -> int:
        """Number of rejections."""
        return sum(1 for r in self.snapshot() if not r.positive)

    def __repr__(self) -> str:
        return (
            f"FeedbackStore(positive={self.positive_count()}, "
            f"negative={self.negative_count()})"
        )
