"""Feedback subsystem: stores, on-line training, adaptive ignorance.

Implements the feedback-based forward mode: validated searches train the
HMM, and the suggested ``O_Cf`` decays as the mode becomes reliable.
"""

from repro.feedback.oracle import SimulatedUser
from repro.feedback.store import FeedbackRecord, FeedbackStore
from repro.feedback.trainer import FeedbackTrainer, adaptive_ignorance

__all__ = [
    "FeedbackRecord",
    "FeedbackStore",
    "FeedbackTrainer",
    "SimulatedUser",
    "adaptive_ignorance",
]
