"""Explanations: the final ranked answers of a QUEST search.

An explanation couples an interpretation with the SQL query it denotes and
the probability assigned by the final Dempster-Shafer combination. "The
results of this module are the top-k explanations, i.e., the SQL queries
which, executed, are the answers for the user keyword queries."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import Configuration
from repro.core.interpretation import Interpretation
from repro.db.query import SelectQuery

__all__ = ["Explanation"]


@dataclass(frozen=True, slots=True)
class Explanation:
    """A ranked SQL answer with its provenance."""

    interpretation: Interpretation
    query: SelectQuery
    probability: float
    #: Number of tuples the query returned, when the wrapper executed it
    #: (``None`` when execution was skipped or denied).
    result_count: int | None = None

    @property
    def configuration(self) -> Configuration:
        """The keyword-to-term mapping behind this explanation."""
        return self.interpretation.configuration

    @property
    def sql(self) -> str:
        """The SQL text of the generated query."""
        return str(self.query)

    def __str__(self) -> str:
        count = "" if self.result_count is None else f", rows={self.result_count}"
        return f"[{self.probability:.4f}{count}] {self.sql}"
