"""The QUEST engine: Algorithm 1 end to end.

``search`` runs the three steps of the paper's process::

    Cap <- HMM_a_priori(q, k)   |   Cf <- HMM_feedback(q, k)
    C   <- CombinerDST(Cap, Cf, O_Cap, O_Cf)      # forward
    I   <- ST(q, C, k)                            # backward
    E   <- CombinerDST(C, I, O_C, O_I)            # explanations
    E   <- QueryBuilder(E)

Every stage is also exposed as a public method so experiments can inspect
partial results (demo message two compares the modules in isolation).
"""

from __future__ import annotations

import numpy as np

from repro.core.configuration import Configuration, KeywordMapping
from repro.core.explanation import Explanation
from repro.core.interpretation import Interpretation, tree_score
from repro.core.query_builder import build_query
from repro.core.settings import QuestSettings
from repro.db.query import SelectQuery
from repro.dst.belief import rank_hypotheses
from repro.dst.combine import dempster_combine
from repro.dst.mass import MassFunction
from repro.errors import AccessDeniedError, CombinationError, QuestError, SteinerError
from repro.hmm.apriori import AprioriWeights, build_apriori_model
from repro.hmm.model import HiddenMarkovModel
from repro.hmm.states import StateSpace
from repro.hmm.viterbi import list_viterbi
from repro.semantics.tokenize import tokenize_query
from repro.steiner.tree import SteinerTree
from repro.steiner.topk import top_k_steiner_trees
from repro.steiner.weights import build_schema_graph
from repro.wrapper.base import SourceWrapper

__all__ = ["Quest"]


class Quest:
    """A QUEST search engine bound to one data source.

    Args:
        wrapper: the source wrapper (full or hidden access).
        settings: engine parameters; defaults to :class:`QuestSettings`.
        apriori_weights: heuristic affinities for the a-priori HMM.
        feedback_model: a trained feedback HMM (enables the feedback mode
            together with ``settings.use_feedback``); usually supplied by
            :class:`repro.feedback.FeedbackTrainer`.
    """

    def __init__(
        self,
        wrapper: SourceWrapper,
        settings: QuestSettings | None = None,
        apriori_weights: AprioriWeights | None = None,
        feedback_model: HiddenMarkovModel | None = None,
    ) -> None:
        self.wrapper = wrapper
        self.settings = settings if settings is not None else QuestSettings()
        self.schema = wrapper.schema
        self.states = StateSpace(self.schema)
        self.apriori_model = build_apriori_model(
            self.schema, self.states, apriori_weights
        )
        self.feedback_model = feedback_model
        self.schema_graph = build_schema_graph(
            self.schema,
            wrapper.catalog,
            mutual_information=self.settings.mutual_information_weights,
        )

    # -- feedback plumbing ---------------------------------------------------

    def set_feedback_model(self, model: HiddenMarkovModel | None) -> None:
        """Install (or clear) the trained feedback HMM."""
        if model is not None and model.states is not self.states:
            if len(model.states) != len(self.states):
                raise QuestError("feedback model uses a different state space")
        self.feedback_model = model

    # -- step 1: forward -------------------------------------------------------

    def decode(
        self, keywords: list[str], model: HiddenMarkovModel, k: int
    ) -> list[Configuration]:
        """Top-k configurations from one HMM via List Viterbi.

        Scores are the softmax of the joint log-probabilities over the
        decoded list, i.e. each configuration's probability relative to its
        alternatives — the quantity the paper normalises into DS masses.
        """
        emissions = model.emission_matrix(keywords, self.wrapper)
        paths = list_viterbi(model, emissions, k)
        if not paths:
            return []
        log_probs = np.array([p.log_probability for p in paths])
        log_probs -= log_probs.max()
        weights = np.exp(log_probs)
        weights /= weights.sum()
        configurations = []
        for path, weight in zip(paths, weights):
            mappings = tuple(
                KeywordMapping(keyword, self.states[state_index])
                for keyword, state_index in zip(keywords, path.states)
            )
            configurations.append(Configuration(mappings, float(weight)))
        return configurations

    def forward(self, keywords: list[str], k: int | None = None) -> list[Configuration]:
        """The combined forward step: a-priori and/or feedback mode + DST."""
        k = k or self.settings.k
        apriori: list[Configuration] = []
        feedback: list[Configuration] = []
        if self.settings.use_apriori:
            apriori = self.decode(keywords, self.apriori_model, k)
        if self.settings.use_feedback and self.feedback_model is not None:
            feedback = self.decode(keywords, self.feedback_model, k)

        if apriori and feedback:
            combined = self._combine_configurations(apriori, feedback, k)
        else:
            combined = apriori or feedback
        if not combined:
            raise QuestError("forward step produced no configurations")
        return combined

    def _combine_configurations(
        self,
        apriori: list[Configuration],
        feedback: list[Configuration],
        k: int,
    ) -> list[Configuration]:
        """``C <- CombinerDST(Cap, Cf, O_Cap, O_Cf)`` over the union frame."""
        frame = frozenset(c.with_score(0.0) for c in apriori + feedback)
        apriori_scores = {c.with_score(0.0): c.score for c in apriori}
        feedback_scores = {c.with_score(0.0): c.score for c in feedback}
        apriori_mass = MassFunction.from_scores(
            apriori_scores, self.settings.uncertainty_apriori, frame
        )
        feedback_mass = MassFunction.from_scores(
            feedback_scores, self.settings.uncertainty_feedback, frame
        )
        combined = dempster_combine(apriori_mass, feedback_mass)
        ranked = rank_hypotheses(combined, k)
        return [
            configuration.with_score(probability)
            for configuration, probability in ranked
        ]

    # -- step 2: backward --------------------------------------------------------

    def backward(
        self, configurations: list[Configuration], k: int | None = None
    ) -> list[Interpretation]:
        """Top-k join paths (interpretations) for each configuration.

        Configurations whose terminals are disconnected in the schema graph
        yield no interpretation and drop out — exactly the instance-
        consistency filtering the backward step exists for.
        """
        k = k or self.settings.k
        interpretations: list[Interpretation] = []
        for configuration in configurations:
            terminals = configuration.terminals(self.schema)
            try:
                trees = top_k_steiner_trees(
                    self.schema_graph,
                    sorted(terminals, key=str),
                    k,
                    prune_supertrees=self.settings.prune_supertrees,
                )
            except SteinerError:
                continue
            for tree in trees:
                interpretations.append(
                    Interpretation(configuration, tree, tree_score(tree.weight))
                )
        return interpretations

    # -- step 3: combination --------------------------------------------------------

    def combine(
        self,
        configurations: list[Configuration],
        interpretations: list[Interpretation],
        k: int | None = None,
    ) -> list[Interpretation]:
        """``E <- CombinerDST(C, I, O_C, O_I)``.

        Forward evidence commits mass to *sets* of interpretations sharing a
        configuration (the forward step knows nothing about join paths);
        backward evidence commits mass to individual interpretations. The
        Dempster intersection concentrates belief on join paths that both a
        likely configuration and a short informative tree support.
        """
        if not interpretations:
            return []
        k = k or self.settings.k
        frame = frozenset(interpretations)

        forward_mass = MassFunction(frame=frame)
        by_configuration: dict[Configuration, set[Interpretation]] = {}
        for interpretation in interpretations:
            by_configuration.setdefault(
                interpretation.configuration, set()
            ).add(interpretation)
        supported = [
            c for c in configurations if c in by_configuration and c.score > 0.0
        ]
        total_score = sum(c.score for c in supported)
        if total_score > 0.0:
            budget = 1.0 - self.settings.uncertainty_forward
            for configuration in supported:
                forward_mass.assign(
                    frozenset(by_configuration[configuration]),
                    budget * configuration.score / total_score,
                )
            if self.settings.uncertainty_forward > 0.0:
                forward_mass.assign(frame, self.settings.uncertainty_forward)
        else:
            forward_mass = MassFunction.vacuous(frame)

        backward_scores = {i: i.score for i in interpretations}
        backward_mass = MassFunction.from_scores(
            backward_scores, self.settings.uncertainty_backward, frame
        )

        try:
            combined = dempster_combine(forward_mass, backward_mass)
        except CombinationError:
            # Total conflict cannot happen over a shared frame, but guard:
            # fall back to the backward ranking.
            combined = backward_mass
        ranked = rank_hypotheses(combined, k)
        return [
            interpretation.with_score(probability)
            for interpretation, probability in ranked
        ]

    # -- step 4: query building --------------------------------------------------------

    def explain(
        self, interpretations: list[Interpretation], limit: int | None = None
    ) -> list[Explanation]:
        """Render ranked interpretations as SQL, optionally executing them.

        Distinct interpretations can denote the same SQL (e.g. two
        configurations differing only in schema-term kinds); only the
        best-ranked explanation per structural query survives. When the
        wrapper can execute, empty-result explanations are dropped per
        ``settings.min_explanation_results``.
        """
        explanations: list[Explanation] = []
        seen_queries: set[tuple] = set()
        for interpretation in interpretations:
            query = build_query(self.schema, interpretation)
            identity = query.signature()
            if identity in seen_queries:
                continue
            seen_queries.add(identity)
            result_count: int | None = None
            if self.settings.execute_explanations:
                try:
                    result_count = self.wrapper.result_count(query)
                except AccessDeniedError:
                    result_count = None
                else:
                    if result_count < self.settings.min_explanation_results:
                        continue
            explanations.append(
                Explanation(
                    interpretation=interpretation,
                    query=query,
                    probability=interpretation.score,
                    result_count=result_count,
                )
            )
            if limit is not None and len(explanations) >= limit:
                break
        return explanations

    # -- the full pipeline --------------------------------------------------------

    def evidence_coverage(self, keywords: list[str]) -> float:
        """Fraction of keywords with non-zero emission evidence.

        A keyword the source cannot relate to any database term at all
        (no full-text hit, no schema-name match, no shape evidence) still
        gets decoded — onto an arbitrary state — but the resulting
        explanations carry no real signal. Multi-source combination uses
        this coverage to discount sources that do not understand part of
        the query.
        """
        if not keywords:
            return 0.0
        covered = sum(
            1
            for keyword in keywords
            if float(
                np.max(self.wrapper.emission_scores(keyword, self.states))
            )
            > 0.0
        )
        return covered / len(keywords)

    def keywords_of(self, query: str) -> list[str]:
        """Tokenise a raw keyword query (exposed for feedback tooling)."""
        keywords = tokenize_query(query)
        if not keywords:
            raise QuestError(f"query contains no usable keywords: {query!r}")
        return keywords

    def search(self, query: str, k: int | None = None) -> list[Explanation]:
        """Answer a keyword query with the top-k explanations.

        Intermediate stages over-generate by ``settings.candidate_factor``
        so that the final combination and the empty-result filter choose
        from a wider pool than the k eventually returned.
        """
        k = k or self.settings.k
        pool = k * self.settings.candidate_factor
        keywords = self.keywords_of(query)
        configurations = self.forward(keywords, pool)
        interpretations = self.backward(configurations, self.settings.k)
        # Rank the complete interpretation pool: explanations that execute
        # to empty results are dropped below, so truncating here would let
        # filtered-out junk displace executable answers further down.
        ranked = self.combine(
            configurations, interpretations, max(pool, len(interpretations))
        )
        return self.explain(ranked, limit=k)

    # -- diagnostics --------------------------------------------------------

    def trivial_tree(self, configuration: Configuration) -> SteinerTree | None:
        """The empty tree when a configuration touches a single table."""
        terminals = configuration.terminals(self.schema)
        if len({t.table for t in terminals}) == 1:
            return SteinerTree(frozenset(terminals), frozenset(), 0.0)
        return None

    def build_sql(self, interpretation: Interpretation) -> SelectQuery:
        """Build (without executing) the SQL for one interpretation."""
        return build_query(self.schema, interpretation)

    def __repr__(self) -> str:
        return (
            f"Quest(schema={self.schema.name!r}, states={len(self.states)}, "
            f"graph_edges={self.schema_graph.edge_count})"
        )
