"""The QUEST engine: Algorithm 1 end to end.

``search`` runs the three steps of the paper's process::

    Cap <- HMM_a_priori(q, k)   |   Cf <- HMM_feedback(q, k)
    C   <- CombinerDST(Cap, Cf, O_Cap, O_Cf)      # forward
    I   <- ST(q, C, k)                            # backward
    E   <- CombinerDST(C, I, O_C, O_I)            # explanations
    E   <- QueryBuilder(E)

Execution is delegated to a :class:`~repro.pipeline.runner.SearchPipeline`
of composable stages (``repro.pipeline``); every stage is still exposed as
a public method — ``forward``/``backward``/``combine``/``explain`` are thin
wrappers over the corresponding stage — so experiments can inspect partial
results exactly as before (demo message two compares the modules in
isolation).

Diagnostics are *returned*, not parked on the engine: ``search_context``
(and ``search_many_contexts``) hand back the full
:class:`~repro.pipeline.context.SearchContext`, whose ``trace`` carries
per-stage timings, candidate counts and exact cache hit/miss deltas for
that one run. This is what makes one shared engine safe for concurrent
callers — nothing about a query's result or its diagnostics lives in
shared mutable engine state. :attr:`Quest.last_trace` and
:attr:`Quest.batch_traces` survive as deprecated, lock-guarded mirrors
for single-threaded callers; ``search_many`` batches a workload through
the same pipeline so the emission and Steiner caches amortise repeated
work across queries.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.batch import fork_available, in_worker, payload, run_forked
from repro.core.configuration import Configuration, KeywordMapping
from repro.core.explanation import Explanation
from repro.core.interpretation import Interpretation
from repro.core.query_builder import build_query
from repro.core.settings import QuestSettings
from repro.db.query import SelectQuery
from repro.errors import QuestError
from repro.forksafe import register_lock_holder
from repro.hmm.apriori import AprioriWeights, build_apriori_model
from repro.resilience import Deadline
from repro.hmm.model import HiddenMarkovModel
from repro.hmm.states import StateSpace
from repro.hmm.viterbi import list_viterbi
from repro.semantics.tokenize import tokenize_query
from repro.steiner.tree import SteinerTree
from repro.steiner.weights import build_schema_graph
from repro.wrapper.base import SourceWrapper

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.pipeline.context import SearchContext, SearchTrace
    from repro.pipeline.runner import SearchPipeline

__all__ = ["Quest"]


class Quest:
    """A QUEST search engine bound to one data source.

    Args:
        wrapper: the source wrapper (full or hidden access).
        settings: engine parameters; defaults to :class:`QuestSettings`.
        apriori_weights: heuristic affinities for the a-priori HMM.
        feedback_model: a trained feedback HMM (enables the feedback mode
            together with ``settings.use_feedback``); usually supplied by
            :class:`repro.feedback.FeedbackTrainer`.
        pipeline: a custom stage composition; defaults to the canonical
            ``Forward -> Backward -> Combine -> Explain`` pipeline.
    """

    def __init__(
        self,
        wrapper: SourceWrapper,
        settings: QuestSettings | None = None,
        apriori_weights: AprioriWeights | None = None,
        feedback_model: HiddenMarkovModel | None = None,
        pipeline: "SearchPipeline | None" = None,
    ) -> None:
        # Imported here, not at module level: the pipeline stages import
        # the core data types, so a module-level import would be circular.
        from repro.pipeline.runner import SearchPipeline

        self.wrapper = wrapper
        self.settings = settings if settings is not None else QuestSettings()
        self.schema = wrapper.schema
        self.states = StateSpace(self.schema)
        self.apriori_model = build_apriori_model(
            self.schema, self.states, apriori_weights
        )
        self.feedback_model: HiddenMarkovModel | None = None
        self.schema_graph = build_schema_graph(
            self.schema,
            wrapper.catalog,
            mutual_information=self.settings.mutual_information_weights,
        )
        self.pipeline = pipeline if pipeline is not None else SearchPipeline()
        #: Guards the deprecated trace mirrors and the feedback revision.
        self._state_lock = threading.Lock()
        register_lock_holder(self, _reset_engine_lock)
        self._last_trace: "SearchTrace | None" = None
        self._batch_traces: list["SearchTrace"] = []
        #: Bumped on every feedback-model change; part of :attr:`version`.
        self._feedback_revision = 0
        if feedback_model is not None:
            # Through the setter, so the constructor cannot bypass the
            # foreign-state-space validation.
            self.set_feedback_model(feedback_model)

    # -- trace mirrors (deprecated) ------------------------------------------

    @property
    def last_trace(self) -> "SearchTrace | None":
        """Diagnostics of the most recent full search (``None`` before any).

        .. deprecated:: Shared mutable state — under concurrent callers
           this is whichever search finished last. Use the trace on the
           :class:`~repro.pipeline.context.SearchContext` returned by
           :meth:`search_context` instead; the mirror is kept (lock
           guarded) for single-threaded API compatibility.
        """
        with self._state_lock:
            return self._last_trace

    @property
    def batch_traces(self) -> list["SearchTrace"]:
        """Traces of the most recent ``search_many`` batch (a copy).

        .. deprecated:: Same caveat as :attr:`last_trace` — prefer the
           contexts returned by :meth:`search_many_contexts`.
        """
        with self._state_lock:
            return list(self._batch_traces)

    def _publish_trace(self, trace: "SearchTrace") -> None:
        with self._state_lock:
            self._last_trace = trace

    def _publish_batch(self, traces: Sequence["SearchTrace"]) -> None:
        with self._state_lock:
            self._batch_traces = list(traces)
            if traces:
                self._last_trace = traces[-1]

    # -- feedback plumbing ---------------------------------------------------

    def set_feedback_model(self, model: HiddenMarkovModel | None) -> None:
        """Install (or clear) the trained feedback HMM.

        The model must be trained over *this* engine's state space: the
        same states in the same order (decoded state indexes are
        positional). A foreign space is rejected even when its length
        happens to match — emission vectors and transition rows would
        silently score the wrong terms.
        """
        if model is not None and model.states is not self.states:
            if (
                len(model.states) != len(self.states)
                or model.states.states != self.states.states
            ):
                raise QuestError("feedback model uses a different state space")
        with self._state_lock:
            self.feedback_model = model
            self._feedback_revision += 1

    # -- result-affecting state version --------------------------------------

    @property
    def version(self) -> tuple:
        """Revision of every result-affecting mutable input.

        ``(feedback revision, source mutation counter, schema-graph
        revision, settings)`` — any change through the engine's own
        mutation surfaces (source writes, ``set_feedback_model``,
        ``add_edge``, reassigning :attr:`settings`) moves at least one
        component, so the serving tier's result cache cannot serve
        across them. Out-of-band surgery on engine internals (e.g.
        swapping :attr:`pipeline` for one with different semantics) is
        not tracked; the serving tier's TTL bounds that exposure.
        """
        return (
            self._feedback_revision,
            self.wrapper.source_version,
            self.schema_graph.version,
            self.settings,
        )

    # -- step 1: forward -------------------------------------------------------

    def decode(
        self,
        keywords: list[str],
        model: HiddenMarkovModel,
        k: int,
        emissions: np.ndarray | None = None,
    ) -> list[Configuration]:
        """Top-k configurations from one HMM via List Viterbi.

        Scores are the softmax of the joint log-probabilities over the
        decoded list, i.e. each configuration's probability relative to its
        alternatives — the quantity the paper normalises into DS masses.

        *emissions* lets the forward stage decode the a-priori and
        feedback models from one shared emission matrix (the matrix
        depends only on the provider and the state space, not on model
        parameters); when omitted it is computed here, batched per
        ``settings.columnar_index``.
        """
        if emissions is None:
            emissions = model.emission_matrix(
                keywords, self.wrapper, batched=self.settings.columnar_index
            )
        paths = list_viterbi(
            model, emissions, k, vectorized=self.settings.vectorized_viterbi
        )
        if not paths:
            return []
        log_probs = np.array([p.log_probability for p in paths])
        log_probs -= log_probs.max()
        weights = np.exp(log_probs)
        weights /= weights.sum()
        configurations = []
        for path, weight in zip(paths, weights):
            mappings = tuple(
                KeywordMapping(keyword, self.states[state_index])
                for keyword, state_index in zip(keywords, path.states)
            )
            configurations.append(Configuration(mappings, float(weight)))
        return configurations

    def forward(self, keywords: list[str], k: int | None = None) -> list[Configuration]:
        """The combined forward step: a-priori and/or feedback mode + DST."""
        return self.pipeline.forward(self, keywords, k or self.settings.k)

    # -- step 2: backward --------------------------------------------------------

    def backward(
        self, configurations: list[Configuration], k: int | None = None
    ) -> list[Interpretation]:
        """Top-k join paths (interpretations) for each configuration."""
        return self.pipeline.backward(self, configurations, k or self.settings.k)

    # -- step 3: combination --------------------------------------------------------

    def combine(
        self,
        configurations: list[Configuration],
        interpretations: list[Interpretation],
        k: int | None = None,
    ) -> list[Interpretation]:
        """``E <- CombinerDST(C, I, O_C, O_I)``."""
        return self.pipeline.combine(
            self, configurations, interpretations, k or self.settings.k
        )

    # -- step 4: query building --------------------------------------------------------

    def explain(
        self, interpretations: list[Interpretation], limit: int | None = None
    ) -> list[Explanation]:
        """Render ranked interpretations as SQL, optionally executing them."""
        return self.pipeline.explain(self, interpretations, limit)

    # -- the full pipeline --------------------------------------------------------

    def evidence_coverage(self, keywords: list[str]) -> float:
        """Fraction of keywords with non-zero emission evidence.

        A keyword the source cannot relate to any database term at all
        (no full-text hit, no schema-name match, no shape evidence) still
        gets decoded — onto an arbitrary state — but the resulting
        explanations carry no real signal. Multi-source combination uses
        this coverage to discount sources that do not understand part of
        the query.
        """
        if not keywords:
            return 0.0
        if self.settings.columnar_index:
            matrix = self.wrapper.emission_matrix(list(keywords), self.states)
            return int(np.count_nonzero(matrix.max(axis=1) > 0.0)) / len(keywords)
        covered = sum(
            1
            for keyword in keywords
            if float(
                np.max(self.wrapper.emission_scores(keyword, self.states))
            )
            > 0.0
        )
        return covered / len(keywords)

    def keywords_of(self, query: str) -> list[str]:
        """Tokenise a raw keyword query (exposed for feedback tooling)."""
        keywords = tokenize_query(query)
        if not keywords:
            raise QuestError(f"query contains no usable keywords: {query!r}")
        return keywords

    def search_context(
        self,
        query: str | None = None,
        keywords: Sequence[str] | None = None,
        k: int | None = None,
        deadline: "Deadline | None" = None,
    ) -> "SearchContext":
        """Answer one query, returning its full :class:`SearchContext`.

        The concurrency-safe entry point: everything the run produced —
        explanations, intermediate stage products and the exact
        :class:`~repro.pipeline.context.SearchTrace` — comes back on the
        returned context, owned solely by the caller. Any number of
        threads may call this on one shared engine; the deprecated
        :attr:`last_trace` mirror is still refreshed (under a lock) for
        old single-threaded callers.

        *deadline* (or, when absent, ``settings.default_deadline_ms``)
        bounds the run: stages degrade cooperatively to best-so-far
        answers with ``trace.degraded`` set, or raise
        :class:`~repro.errors.DeadlineExceededError` when the budget dies
        before anything salvageable exists.
        """
        if deadline is None:
            deadline = Deadline.from_ms(self.settings.default_deadline_ms)
        # The kwarg is passed only when a budget exists, so pipeline
        # stand-ins predating deadlines keep working unbounded.
        extra = {} if deadline is None else {"deadline": deadline}
        context = self.pipeline.run(
            self, query=query, keywords=keywords, k=k, **extra
        )
        self._publish_trace(context.trace)
        return context

    def search(self, query: str, k: int | None = None) -> list[Explanation]:
        """Answer a keyword query with the top-k explanations.

        Intermediate stages over-generate by ``settings.candidate_factor``
        so that the final combination and the empty-result filter choose
        from a wider pool than the k eventually returned.
        """
        return self.search_context(query=query, k=k).explanations

    def search_keywords(
        self, keywords: Sequence[str], k: int | None = None
    ) -> list[Explanation]:
        """``search`` over pre-tokenised keywords.

        Batch callers (multi-source search) tokenise a query once and fan
        the keyword list out to every source engine through this entry
        point, instead of re-tokenising per source.
        """
        return self.search_context(keywords=keywords, k=k).explanations

    def search_many(
        self,
        queries: Sequence[str],
        k: int | None = None,
        strict: bool = True,
        workers: int | None = None,
    ) -> list[list[Explanation]]:
        """Answer a workload of queries, amortising work across them.

        Queries run back to back through the pipeline while the wrapper's
        emission cache and the schema graph's Steiner cache persist, so a
        workload with repeated keywords or terminal sets skips the
        corresponding recomputation. Per-query diagnostics land in
        :attr:`batch_traces`.

        With *workers* > 1 (default: ``settings.batch_workers``) the
        queries fan out over that many forked processes instead — the
        CPU-bound batch-throughput mode. Workers inherit the engine by
        fork (nothing is pickled but queries and results) and their
        caches warm independently, so answers stay element-wise identical
        to the sequential run; platforms without ``fork`` fall back to
        sequential execution.

        Args:
            queries: raw query texts.
            k: explanations per query (defaults to ``settings.k``).
            strict: when ``False``, a query that raises (a
                :class:`QuestError` or any wrapper failure) yields an
                empty result list instead of aborting the batch.
            workers: process-pool width for this batch, overriding
                ``settings.batch_workers``.

        Returns:
            One ranked explanation list per query, in input order —
            element-wise identical to calling :meth:`search` per query.
        """
        note: str | None = None
        if workers is None:
            workers = self.settings.batch_workers
            # An implicit pool width degrades to sequential on a 1-CPU
            # host: forking buys no parallelism without a second core,
            # and the fork itself costs a copy-on-write address space
            # per worker. An explicit ``workers=`` argument is honoured
            # as given (benchmarks measure the pool itself).
            if workers > 1 and os.cpu_count() == 1:
                note = (
                    f"batch fan-out degraded to sequential: "
                    f"settings.batch_workers={workers} on a single-CPU host"
                )
                workers = 1
        if (
            workers > 1
            and len(queries) > 1
            and fork_available()
            and not in_worker()
        ):
            items = [(query, k, strict) for query in queries]
            results = run_forked(self, _forked_search_one, items, workers)
            if results is not None:
                self._publish_batch([trace for _explanations, trace in results])
                return [explanations for explanations, _trace in results]
            # A sibling thread's forked batch holds the fork machinery:
            # degrade to the sequential loop instead of blocking on it.
        contexts = self.search_many_contexts(queries, k=k, strict=strict)
        if note is not None:
            for context in contexts:
                context.trace.notes.append(note)
        return [context.explanations for context in contexts]

    def search_many_contexts(
        self,
        queries: Sequence[str],
        k: int | None = None,
        strict: bool = True,
    ) -> list["SearchContext"]:
        """``search_many`` returning one :class:`SearchContext` per query.

        The concurrency-safe batch entry point (always in-process and
        sequential — contexts carry every intermediate product, which is
        more than the forked tier ships back): callers own the returned
        contexts outright, and each context's trace is exact for its
        query. The deprecated mirrors are refreshed under the lock.
        """
        contexts = self.pipeline.run_many(self, queries, k=k, strict=strict)
        self._publish_batch([context.trace for context in contexts])
        return contexts

    # -- diagnostics --------------------------------------------------------

    def trivial_tree(self, configuration: Configuration) -> SteinerTree | None:
        """The empty tree when a configuration touches a single table."""
        terminals = configuration.terminals(self.schema)
        if len({t.table for t in terminals}) == 1:
            return SteinerTree(frozenset(terminals), frozenset(), 0.0)
        return None

    def build_sql(self, interpretation: Interpretation) -> SelectQuery:
        """Build (without executing) the SQL for one interpretation."""
        return build_query(self.schema, interpretation)

    def __repr__(self) -> str:
        return (
            f"Quest(schema={self.schema.name!r}, states={len(self.states)}, "
            f"graph_edges={self.schema_graph.edge_count})"
        )


def _reset_engine_lock(engine: "Quest") -> None:
    engine._state_lock = threading.Lock()


def _forked_search_one(
    item: tuple[str, int | None, bool],
) -> tuple[list[Explanation], object]:
    """One query of a forked ``search_many`` batch (module-level so it
    crosses the process boundary by name; the engine arrives by fork)."""
    query, k, strict = item
    engine: Quest = payload()
    context = engine.pipeline.run_many(engine, [query], k=k, strict=strict)[0]
    return context.explanations, context.trace
