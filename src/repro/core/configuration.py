"""Configurations: mappings of keywords into database terms.

A configuration is the forward step's output — one database term (HMM
state) per keyword, with a confidence score. Configurations are hashable so
they can serve as Dempster-Shafer hypotheses directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.schema import ColumnRef, Schema
from repro.hmm.states import State, StateKind

__all__ = ["KeywordMapping", "Configuration"]


@dataclass(frozen=True, slots=True)
class KeywordMapping:
    """One keyword mapped to one database term."""

    keyword: str
    state: State

    def __str__(self) -> str:
        return f"{self.keyword!r} -> {self.state}"


@dataclass(frozen=True, slots=True)
class Configuration:
    """A complete mapping of a keyword query into database terms.

    Slotted (as are :class:`KeywordMapping`, the interpretations and the
    explanations): the forward pool allocates ``k * candidate_factor`` of
    these per query, so per-instance ``__dict__``s are measurable.

    ``score`` is the confidence the producing component attached (List
    Viterbi probability, or a DS pignistic probability after combination).
    It is excluded from identity: two configurations with the same mappings
    are the *same hypothesis* regardless of who scored them, which is what
    lets Dempster's rule intersect evidence from the two operating modes.
    """

    mappings: tuple[KeywordMapping, ...]
    score: float = 0.0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self.mappings == other.mappings

    def __hash__(self) -> int:
        return hash(self.mappings)

    # -- accessors -----------------------------------------------------------

    @property
    def keywords(self) -> tuple[str, ...]:
        """The keywords, in query order."""
        return tuple(m.keyword for m in self.mappings)

    @property
    def states(self) -> tuple[State, ...]:
        """The mapped database terms, in query order."""
        return tuple(m.state for m in self.mappings)

    @property
    def tables(self) -> frozenset[str]:
        """Tables touched by any mapped term."""
        return frozenset(m.state.table for m in self.mappings)

    def domain_mappings(self) -> tuple[KeywordMapping, ...]:
        """Mappings onto attribute domains (these become WHERE predicates)."""
        return tuple(
            m for m in self.mappings if m.state.kind is StateKind.DOMAIN
        )

    def attribute_mappings(self) -> tuple[KeywordMapping, ...]:
        """Mappings onto attribute names (these become projections)."""
        return tuple(
            m for m in self.mappings if m.state.kind is StateKind.ATTRIBUTE
        )

    def table_mappings(self) -> tuple[KeywordMapping, ...]:
        """Mappings onto table names."""
        return tuple(m for m in self.mappings if m.state.kind is StateKind.TABLE)

    def terminals(self, schema: Schema) -> frozenset[ColumnRef]:
        """The schema-graph terminals this configuration pins down.

        ATTRIBUTE and DOMAIN terms contribute their column node; a TABLE
        term contributes the table's primary-key column(s) — the node(s)
        every attribute of that table hangs off in the schema graph.
        """
        terminals: set[ColumnRef] = set()
        for mapping in self.mappings:
            state = mapping.state
            if state.kind is StateKind.TABLE:
                for key_column in schema.table(state.table).primary_key:
                    terminals.add(ColumnRef(state.table, key_column))
            else:
                ref = state.column_ref
                assert ref is not None  # non-TABLE states always carry one
                terminals.add(ref)
        return frozenset(terminals)

    def with_score(self, score: float) -> "Configuration":
        """The same hypothesis re-scored."""
        return Configuration(self.mappings, score)

    def __str__(self) -> str:
        body = ", ".join(str(m) for m in self.mappings)
        return f"Configuration({body}, score={self.score:.4f})"
