"""Engine settings: the paper's tunable parameters in one place.

``O_Cap``, ``O_Cf``, ``O_C`` and ``O_I`` are the uncertainty (ignorance)
degrees of Algorithm 1; they control how much each evidence source sways
the Dempster-Shafer combinations, and tuning them is how QUEST "adapts to
different working conditions" (demo message four).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import QuestError

__all__ = ["QuestSettings"]


def _check_unit(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise QuestError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class QuestSettings:
    """All engine knobs, with the defaults used across the benchmarks.

    Attributes:
        k: number of explanations returned by a search.
        candidate_factor: the intermediate stages (configurations from List
            Viterbi, interpretations entering the final combination) keep
            ``k * candidate_factor`` candidates. Over-generating lets the
            Dempster-Shafer combination and the empty-result filter rescue
            answers the forward ranking alone would have cut — essential on
            hidden sources, where forward evidence is weak.
        uncertainty_apriori: ``O_Cap`` — ignorance of the a-priori forward
            mode. Increase on well-understood schemas with no feedback.
        uncertainty_feedback: ``O_Cf`` — ignorance of the feedback forward
            mode. Should start high (little training data) and decrease as
            positive feedback accumulates.
        uncertainty_forward: ``O_C`` — ignorance of the combined forward
            evidence in the final combination.
        uncertainty_backward: ``O_I`` — ignorance of the backward evidence.
        use_feedback: run the feedback HMM (requires a trained model).
        use_apriori: run the a-priori HMM.
        mutual_information_weights: weigh schema-graph join edges by the
            normalised information distance (needs instance access);
            ``False`` gives uniform weights (ablation E8, hidden sources).
        prune_supertrees: discard join paths containing an already-found
            path (QUEST's sub-tree redundancy filter).
        execute_explanations: run the final SQL through the wrapper and
            attach result counts (skipped automatically when the wrapper
            has no endpoint).
        min_explanation_results: when executing, drop explanations whose
            query returns fewer rows than this. The default of 1 enforces
            the paper's requirement to "consider only join-paths actually
            existing in the database instance"; 0 keeps empty answers.
        vectorized_viterbi: decode configurations with the numpy tensor
            List Viterbi kernel; ``False`` selects the per-cell pure-Python
            reference. Results are identical — the flag exists for parity
            checks (``tests/perf``) and the regression harness's
            reference-kernel baseline.
        bitmask_dst: run Dempster combinations over integer focal bitmasks
            instead of frozensets. Same identical-results contract.
        fast_steiner: enumerate Steiner trees on the integer-interned
            graph snapshot (bitmask edge/node/terminal sets). Same
            identical-results contract.
        columnar_index: score a query's keywords against the state space
            through the wrapper's batched ``emission_matrix`` (keyword
            deduplication + one columnar-index pass); ``False`` selects
            the retained per-keyword dict-walk reference. Same
            identical-results contract as the kernel flags.
        batched_shortest_paths: fill the shortest-path cache for all of a
            query's terminals with one vectorised multi-source pass over
            the compact graph instead of one Dijkstra per terminal;
            ``False`` selects the per-source reference. The cached rows
            are bit-identical either way — same identical-results
            contract as the kernel flags.
        steiner_plan_cache: reuse Dreyfus-Wagner subset tables (and the
            backward stage's per-terminal distance rows) across queries
            through the schema graph's revision-stamped plan cache;
            ``False`` recomputes every row from scratch. Hit/miss
            counters surface as ``SearchTrace.steiner_subset_cache``.
        sql_pushdown: when the wrapper's backend supports it, answer the
            backward stage's connectivity prefilter with a recursive CTE
            over the mirrored edge relation, and size explanations with
            a bounded ``COUNT(*) ... LIMIT`` probe instead of an exact
            count; ``False`` keeps everything in-process. Reported
            results and counts are identical either way.
        artifact_mmap: open persisted ``.npz`` columnar index artifacts
            memory-mapped (``np.memmap`` views over the artifact file)
            instead of materialising private in-heap copies. Scores are
            bit-identical either way; the flag exists for deployment
            shape — N preforked serving workers mapping one artifact
            share a single set of physical pages through the OS page
            cache, so worker warm start costs an open+validate instead
            of a rebuild. Consumed by the serving tier's engine
            factories (:mod:`repro.service.prefork`); in-process engines
            that never load artifacts ignore it.
        default_deadline_ms: per-request time budget applied when the
            caller supplies none (HTTP requests without an
            ``X-Quest-Deadline-Ms`` header, direct ``QuestService.search``
            calls). ``None`` (the default) means unbounded. On expiry the
            pipeline returns best-so-far results with ``trace.degraded``
            set, or raises :class:`repro.errors.DeadlineExceededError`
            (HTTP 504) when nothing salvageable exists yet.
        batch_workers: process-pool width for ``search_many`` batch
            fan-out. ``1`` (the default) runs queries sequentially in
            process; ``N > 1`` forks N workers for CPU-bound multi-query
            throughput (results stay element-wise identical — per-query
            answers never depend on cross-query cache state). Requires
            the ``fork`` start method; platforms without it fall back to
            sequential execution. On single-CPU hosts an implicit width
            from this setting degrades to sequential (forking buys
            nothing without a second core); an explicit ``workers=``
            argument to ``search_many`` is honoured as given.
    """

    k: int = 10
    candidate_factor: int = 3
    uncertainty_apriori: float = 0.3
    uncertainty_feedback: float = 0.5
    uncertainty_forward: float = 0.3
    uncertainty_backward: float = 0.3
    use_feedback: bool = False
    use_apriori: bool = True
    mutual_information_weights: bool = True
    prune_supertrees: bool = True
    execute_explanations: bool = True
    min_explanation_results: int = 1
    vectorized_viterbi: bool = True
    bitmask_dst: bool = True
    fast_steiner: bool = True
    columnar_index: bool = True
    batched_shortest_paths: bool = True
    steiner_plan_cache: bool = True
    sql_pushdown: bool = True
    artifact_mmap: bool = True
    default_deadline_ms: float | None = None
    batch_workers: int = 1

    @classmethod
    def reference_kernels(cls, **changes: object) -> "QuestSettings":
        """Settings running every kernel on its pure-Python reference path.

        The parity tests and :mod:`benchmarks.regression` build engines
        from this to prove the optimised kernels change latency, never
        answers. *changes* override any field — including the kernel flags
        themselves, so one kernel at a time can be re-enabled when
        bisecting a discrepancy (e.g. ``reference_kernels(bitmask_dst=True)``).
        """
        flags: dict[str, object] = {
            "vectorized_viterbi": False,
            "bitmask_dst": False,
            "fast_steiner": False,
            "columnar_index": False,
            "batched_shortest_paths": False,
            "steiner_plan_cache": False,
            "sql_pushdown": False,
        }
        flags.update(changes)
        return cls(**flags)  # type: ignore[arg-type]

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise QuestError(f"k must be positive, got {self.k}")
        if self.candidate_factor <= 0:
            raise QuestError(
                f"candidate_factor must be positive, got {self.candidate_factor}"
            )
        _check_unit("uncertainty_apriori", self.uncertainty_apriori)
        _check_unit("uncertainty_feedback", self.uncertainty_feedback)
        _check_unit("uncertainty_forward", self.uncertainty_forward)
        _check_unit("uncertainty_backward", self.uncertainty_backward)
        if not (self.use_apriori or self.use_feedback):
            raise QuestError("at least one forward operating mode must be enabled")
        if self.min_explanation_results < 0:
            raise QuestError("min_explanation_results must be non-negative")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise QuestError(
                f"default_deadline_ms must be positive, got {self.default_deadline_ms}"
            )
        if self.batch_workers <= 0:
            raise QuestError(
                f"batch_workers must be positive, got {self.batch_workers}"
            )

    def updated(self, **changes: object) -> "QuestSettings":
        """A copy with *changes* applied (validates the result)."""
        return replace(self, **changes)  # type: ignore[arg-type]
