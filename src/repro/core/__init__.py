"""QUEST's core: configurations, interpretations, explanations, the engine.

The primary public API of the reproduction: build a wrapper around a data
source, construct :class:`Quest`, call :meth:`Quest.search`.
"""

from repro.core.configuration import Configuration, KeywordMapping
from repro.core.engine import Quest
from repro.core.explanation import Explanation
from repro.core.interpretation import Interpretation, tree_score
from repro.core.multisource import MultiSourceQuest
from repro.core.query_builder import build_query
from repro.core.settings import QuestSettings

__all__ = [
    "Configuration",
    "Explanation",
    "Interpretation",
    "KeywordMapping",
    "MultiSourceQuest",
    "Quest",
    "QuestSettings",
    "build_query",
    "tree_score",
]
