"""Interpretations: configurations materialised as join paths.

The backward step turns each configuration into interpretations — concrete
Steiner trees over the schema graph joining the configuration's terminals.
The tree weight (mutual-information distances) is converted into a score so
interpretations can enter the Dempster-Shafer combination alongside
configuration scores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.configuration import Configuration
from repro.steiner.tree import SteinerTree

__all__ = ["Interpretation", "tree_score"]


def tree_score(weight: float) -> float:
    """Map a tree weight (a distance; lower is better) to a score in (0, 1].

    ``1 / (1 + w)`` keeps the ordering while decaying gently: an
    ``exp(-w)`` style score lets a trivial single-table tree (weight 0)
    outvote any legitimate multi-join path by an order of magnitude, which
    would make the backward evidence drown the forward evidence in the
    final Dempster-Shafer combination for every join query.
    """
    return 1.0 / (1.0 + max(0.0, weight))


@dataclass(frozen=True, slots=True)
class Interpretation:
    """One join path materialising one configuration.

    Identity is (configuration, tree signature): the same structural
    hypothesis may be produced with different scores by differently weighted
    searches, and must still unify under Dempster's rule.
    """

    configuration: Configuration
    tree: SteinerTree
    score: float = 0.0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interpretation):
            return NotImplemented
        return (
            self.configuration == other.configuration
            and self.tree.signature() == other.tree.signature()
        )

    def __hash__(self) -> int:
        return hash((self.configuration, self.tree.signature()))

    @property
    def tables(self) -> frozenset[str]:
        """All tables on the join path (configuration tables + Steiner points)."""
        return self.tree.tables | self.configuration.tables

    def with_score(self, score: float) -> "Interpretation":
        """The same hypothesis re-scored."""
        return Interpretation(self.configuration, self.tree, score)

    def __str__(self) -> str:
        return (
            f"Interpretation(tables={sorted(self.tables)}, "
            f"tree_weight={self.tree.weight:.3f}, score={self.score:.4f})"
        )
