"""Multi-source search: Algorithm 2 ("Combine Results") of the paper.

QUEST is designed "as an add-on to existing databases, allowing users to
express keyword query not only on owned databases, but also on virtually
integrated data sources". Algorithm 2 in Figure 1 combines partial queries
from two sources: each source's forward (H) and backward (S) evidence is
combined into per-source explanations E1, E2, and a final Dempster-Shafer
combination with per-source ignorance values ``O_E1``, ``O_E2`` merges the
two explanation rankings into the top-k answers T.

Here each source is a full :class:`~repro.core.engine.Quest` engine (which
already performs the per-source H x S combination), and this module
implements the outer combination over any number of sources. The query is
tokenised exactly once; the per-source searches — independent by
construction — fan out over a thread pool and their rankings are collected
as each engine completes. The final Dempster-Shafer fold needs the union
frame of every source's answers, so it runs after the last source reports,
always in declaration order: results are bit-identical to a sequential run
regardless of thread scheduling.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Sequence

from repro.core.batch import fork_available, in_worker, payload, run_forked
from repro.core.engine import Quest
from repro.core.explanation import Explanation
from repro.dst.belief import rank_hypotheses
from repro.dst.combine import dempster_combine
from repro.dst.mass import FrameInterning, MassFunction
from repro.errors import QuestError
from repro.forksafe import register_lock_holder
from repro.semantics.tokenize import tokenize_query

__all__ = ["MultiSourceQuest"]


def _reset_multisource_lock(quest: "MultiSourceQuest") -> None:
    # Thread pools do not survive a fork either: a pool snapshot in the
    # child has no worker threads, so drop it for lazy recreation.
    quest._executor_lock = threading.Lock()
    quest._executor = None
    quest._executor_width = 0

#: Upper bound on fan-out threads when the caller does not choose one.
DEFAULT_MAX_WORKERS = 8


class MultiSourceQuest:
    """Keyword search over several sources with DS result combination.

    Args:
        engines: named per-source engines.
        ignorance: per-source ignorance values (``O_E1``, ``O_E2``, ... in
            the paper); defaults to 0.3 for every source. Raising a
            source's value lowers its influence on the merged ranking.
        max_workers: fan-out width for per-source searches; ``1`` forces
            fully sequential execution (useful for debugging and for
            differential tests against the threaded path). Defaults to
            one thread per source, capped at ``DEFAULT_MAX_WORKERS``.
        batch_workers: process-pool width for :meth:`search_many` —
            queries of a workload fan out over forked processes (each of
            which still threads its per-source searches). ``None``/``1``
            keeps the sequential per-query loop.
    """

    def __init__(
        self,
        engines: dict[str, Quest],
        ignorance: dict[str, float] | None = None,
        max_workers: int | None = None,
        batch_workers: int | None = None,
    ) -> None:
        if not engines:
            raise QuestError("multi-source search needs at least one source")
        if max_workers is not None and max_workers <= 0:
            raise QuestError(f"max_workers must be positive, got {max_workers}")
        if batch_workers is not None and batch_workers <= 0:
            raise QuestError(
                f"batch_workers must be positive, got {batch_workers}"
            )
        self.engines = dict(engines)
        self.max_workers = max_workers
        self.batch_workers = batch_workers
        #: Lazily created and reused across searches so a workload pays
        #: one thread-pool spin-up, not one per query. Creation is guarded
        #: by a lock: concurrent first searches must not race two pools
        #: into existence (the loser would leak its worker threads).
        self._executor: ThreadPoolExecutor | None = None
        #: Width the live executor was created with; when the effective
        #: width changes (``max_workers`` reassigned, engines added) the
        #: stale pool is replaced instead of silently reused.
        self._executor_width = 0
        self._executor_lock = threading.Lock()
        register_lock_holder(self, _reset_multisource_lock)
        self.ignorance = {
            name: 0.3 if ignorance is None else ignorance.get(name, 0.3)
            for name in self.engines
        }
        for name, value in self.ignorance.items():
            if not 0.0 <= value <= 1.0:
                raise QuestError(
                    f"ignorance for source {name!r} must be in [0, 1]"
                )

    # -- per-source execution -------------------------------------------------

    def _search_source(
        self, name: str, keywords: list[str], k: int
    ) -> tuple[float, list[Explanation]]:
        """Coverage and ranked explanations of one source.

        A source that cannot process the query (no configurations, ...)
        contributes nothing rather than aborting the combination.
        """
        engine = self.engines[name]
        try:
            coverage = engine.evidence_coverage(keywords)
            explanations = engine.search_keywords(keywords, k)
        except QuestError:
            return 0.0, []
        return coverage, explanations

    def _gather(
        self, keywords: list[str], k: int
    ) -> tuple[dict[str, float], dict[str, list[Explanation]]]:
        """Run every source, threaded when more than one worker is allowed."""
        coverage: dict[str, float] = {}
        per_source: dict[str, list[Explanation]] = {}
        workers = self.max_workers
        if workers is None:
            workers = min(len(self.engines), DEFAULT_MAX_WORKERS)
        if workers == 1 or len(self.engines) == 1:
            for name in self.engines:
                coverage[name], per_source[name] = self._search_source(
                    name, keywords, k
                )
            return coverage, per_source

        futures: dict | None = None
        for _attempt in range(3):
            executor = self._ensure_executor(workers)
            partial: dict = {}
            try:
                for name in self.engines:
                    partial[
                        executor.submit(self._search_source, name, keywords, k)
                    ] = name
                futures = partial
                break
            except RuntimeError:
                # The pool was swapped out (width change) or shut down
                # (close()) by a sibling thread between capture and
                # submit. Cancel whatever made it in (queued tasks are
                # dropped; running ones finish and are discarded) and
                # retry the whole batch on the fresh pool.
                for future in partial:
                    future.cancel()
                futures = None
        if futures is None:
            # Pathological churn on the executor: answer sequentially
            # rather than loop forever.
            for name in self.engines:
                coverage[name], per_source[name] = self._search_source(
                    name, keywords, k
                )
            return coverage, per_source
        # Collect rankings as sources complete (fast engines are not
        # held behind slow ones); the DS fold itself happens after the
        # last one, over the union frame.
        for future in as_completed(futures):
            name = futures[future]
            coverage[name], per_source[name] = future.result()
        return coverage, per_source

    def _ensure_executor(self, workers: int) -> ThreadPoolExecutor:
        """The shared pool, (re)created at the effective width.

        A pool released by :meth:`close` or built at a different width is
        replaced; the stale pool is shut down without waiting (work
        already on it completes, new submissions are refused — sibling
        searches holding the old reference retry in :meth:`_gather`).
        """
        stale: ThreadPoolExecutor | None = None
        with self._executor_lock:
            if self._executor is None or self._executor_width != workers:
                stale, self._executor = self._executor, ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="quest-source"
                )
                self._executor_width = workers
            executor = self._executor
        if stale is not None:
            stale.shutdown(wait=False)
        return executor

    def close(self) -> None:
        """Shut down the shared executor (idempotent; optional — worker
        threads are also reaped at interpreter exit)."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
            self._executor_width = 0
        if executor is not None:
            executor.shutdown(wait=True)

    @property
    def version(self) -> tuple:
        """Combined result-affecting revision over every source engine.

        Mirrors :attr:`Quest.version` for the serving tier: any mutation
        that could change a merged ranking moves this — a source
        engine's own version, the set of sources, or the per-source
        ignorance values (a documented knob callers may reassign
        directly, so it is keyed by content rather than by a counter).
        """
        return (
            tuple(sorted(self.ignorance.items())),
            tuple((name, engine.version) for name, engine in self.engines.items()),
        )

    def __enter__(self) -> "MultiSourceQuest":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the outer combination -------------------------------------------------

    def search(
        self, query: str, k: int = 10
    ) -> list[tuple[str, Explanation]]:
        """Top-k explanations across all sources, best first.

        Hypotheses are ``(source name, SQL signature)`` pairs — the same
        structural query found on two sources is two distinct answers, as
        the sources hold different data. Returns ``(source, explanation)``
        pairs ranked by combined probability (stored on the explanation).
        """
        # Tokenise once for every source; the engines receive the keyword
        # list directly instead of re-tokenising the raw text.
        keywords = tokenize_query(query)
        if not keywords:
            return []
        coverage, per_source = self._gather(keywords, k)
        if not any(per_source.values()):
            return []

        # One body of evidence per source over the union frame of answers.
        frame = frozenset(
            (name, explanation.query.signature())
            for name, explanations in per_source.items()
            for explanation in explanations
        )
        # One shared interning for the whole combination chain (no
        # per-combine re-encoding). The bitmask loop runs only when every
        # participating engine opted in: a single reference-kernels engine
        # flips the whole chain to the reference loop, so flag-based
        # bisection covers multi-source combinations too.
        interning = FrameInterning(frame)
        bitmask = all(
            engine.settings.bitmask_dst for engine in self.engines.values()
        )
        bodies: list[MassFunction] = []
        by_hypothesis: dict[tuple, tuple[str, Explanation]] = {}
        for name in self.engines:
            explanations = per_source.get(name, [])
            scores: dict[tuple, float] = {}
            for explanation in explanations:
                hypothesis = (name, explanation.query.signature())
                scores[hypothesis] = explanation.probability
                by_hypothesis[hypothesis] = (name, explanation)
            if not scores:
                continue
            # A source that lacks evidence for part of the query is more
            # ignorant about it: its declared O_E scales up so its
            # (necessarily speculative) answers weigh less.
            effective_ignorance = 1.0 - (
                (1.0 - self.ignorance[name]) * coverage.get(name, 1.0)
            )
            bodies.append(
                MassFunction.from_scores(
                    scores, effective_ignorance, frame, interning=interning
                )
            )

        combined = bodies[0]
        for body in bodies[1:]:
            combined = dempster_combine(combined, body, bitmask=bitmask)

        ranked: list[tuple[str, Explanation]] = []
        for hypothesis, probability in rank_hypotheses(combined, k):
            name, explanation = by_hypothesis[hypothesis]
            ranked.append(
                (
                    name,
                    Explanation(
                        interpretation=explanation.interpretation,
                        query=explanation.query,
                        probability=probability,
                        result_count=explanation.result_count,
                    ),
                )
            )
        return ranked

    def search_many(
        self, queries: Sequence[str], k: int = 10, workers: int | None = None
    ) -> list[list[tuple[str, Explanation]]]:
        """Answer a workload of queries, one merged ranking per query.

        Queries run back to back, so each source engine's emission and
        Steiner caches warm across the workload exactly as in
        :meth:`Quest.search_many`. With *workers* > 1 (default:
        ``batch_workers`` from the constructor) the queries fan out over
        forked processes instead; each worker re-threads its per-source
        searches, and the merged rankings stay element-wise identical to
        the sequential loop.
        """
        if workers is None:
            workers = self.batch_workers or 1
        if (
            workers > 1
            and len(queries) > 1
            and fork_available()
            and not in_worker()
        ):
            # Thread pools do not survive a fork: the prefork hook
            # releases the shared executor once the fork is actually
            # happening (it is lazily recreated on the next threaded
            # search, in the parent and in every worker) — a contended
            # attempt that degrades to the sequential loop must not
            # tear down and rebuild the pool for nothing.
            results = run_forked(
                self,
                _forked_multi_search_one,
                [(query, k) for query in queries],
                workers,
                prefork=self.close,
            )
            if results is not None:
                return results
            # A sibling thread's forked batch owns the fork machinery:
            # degrade to the sequential loop instead of blocking on it.
        return [self.search(query, k) for query in queries]


def _forked_multi_search_one(
    item: tuple[str, int],
) -> list[tuple[str, Explanation]]:
    """One query of a forked multi-source batch (module-level so it
    crosses the process boundary by name; the engines arrive by fork)."""
    query, k = item
    quest: MultiSourceQuest = payload()
    return quest.search(query, k)
