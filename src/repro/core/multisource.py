"""Multi-source search: Algorithm 2 ("Combine Results") of the paper.

QUEST is designed "as an add-on to existing databases, allowing users to
express keyword query not only on owned databases, but also on virtually
integrated data sources". Algorithm 2 in Figure 1 combines partial queries
from two sources: each source's forward (H) and backward (S) evidence is
combined into per-source explanations E1, E2, and a final Dempster-Shafer
combination with per-source ignorance values ``O_E1``, ``O_E2`` merges the
two explanation rankings into the top-k answers T.

Here each source is a full :class:`~repro.core.engine.Quest` engine (which
already performs the per-source H x S combination), and this module
implements the outer combination over any number of sources.
"""

from __future__ import annotations

from repro.core.engine import Quest
from repro.core.explanation import Explanation
from repro.dst.belief import rank_hypotheses
from repro.dst.combine import dempster_combine
from repro.dst.mass import MassFunction
from repro.errors import QuestError

__all__ = ["MultiSourceQuest"]


class MultiSourceQuest:
    """Keyword search over several sources with DS result combination.

    Args:
        engines: named per-source engines.
        ignorance: per-source ignorance values (``O_E1``, ``O_E2``, ... in
            the paper); defaults to 0.3 for every source. Raising a
            source's value lowers its influence on the merged ranking.
    """

    def __init__(
        self,
        engines: dict[str, Quest],
        ignorance: dict[str, float] | None = None,
    ) -> None:
        if not engines:
            raise QuestError("multi-source search needs at least one source")
        self.engines = dict(engines)
        self.ignorance = {
            name: 0.3 if ignorance is None else ignorance.get(name, 0.3)
            for name in self.engines
        }
        for name, value in self.ignorance.items():
            if not 0.0 <= value <= 1.0:
                raise QuestError(
                    f"ignorance for source {name!r} must be in [0, 1]"
                )

    def search(
        self, query: str, k: int = 10
    ) -> list[tuple[str, Explanation]]:
        """Top-k explanations across all sources, best first.

        Hypotheses are ``(source name, SQL signature)`` pairs — the same
        structural query found on two sources is two distinct answers, as
        the sources hold different data. Returns ``(source, explanation)``
        pairs ranked by combined probability (stored on the explanation).
        """
        per_source: dict[str, list[Explanation]] = {}
        coverage: dict[str, float] = {}
        for name, engine in self.engines.items():
            try:
                keywords = engine.keywords_of(query)
                coverage[name] = engine.evidence_coverage(keywords)
                per_source[name] = engine.search(query, k)
            except QuestError:
                coverage[name] = 0.0
                per_source[name] = []
        if not any(per_source.values()):
            return []

        # One body of evidence per source over the union frame of answers.
        frame = frozenset(
            (name, explanation.query.signature())
            for name, explanations in per_source.items()
            for explanation in explanations
        )
        bodies: list[MassFunction] = []
        by_hypothesis: dict[tuple, tuple[str, Explanation]] = {}
        for name, explanations in per_source.items():
            scores: dict[tuple, float] = {}
            for explanation in explanations:
                hypothesis = (name, explanation.query.signature())
                scores[hypothesis] = explanation.probability
                by_hypothesis[hypothesis] = (name, explanation)
            if not scores:
                continue
            # A source that lacks evidence for part of the query is more
            # ignorant about it: its declared O_E scales up so its
            # (necessarily speculative) answers weigh less.
            effective_ignorance = 1.0 - (
                (1.0 - self.ignorance[name]) * coverage.get(name, 1.0)
            )
            bodies.append(
                MassFunction.from_scores(scores, effective_ignorance, frame)
            )

        combined = bodies[0]
        for body in bodies[1:]:
            combined = dempster_combine(combined, body)

        ranked: list[tuple[str, Explanation]] = []
        for hypothesis, probability in rank_hypotheses(combined, k):
            name, explanation = by_hypothesis[hypothesis]
            ranked.append(
                (
                    name,
                    Explanation(
                        interpretation=explanation.interpretation,
                        query=explanation.query,
                        probability=probability,
                        result_count=explanation.result_count,
                    ),
                )
            )
        return ranked
