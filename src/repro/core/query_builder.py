"""QueryBuilder: rendering interpretations as executable SQL queries.

The last step of Algorithm 1 (``E <- QueryBuilder(E)``): an interpretation
fixes the FROM clause (the tables its Steiner tree touches), the join
conditions (the tree's primary/foreign key edges) and the WHERE clause
(keywords mapped to attribute domains become containment predicates);
keywords mapped to attribute names drive the projection.
"""

from __future__ import annotations

from repro.core.configuration import Configuration
from repro.core.interpretation import Interpretation
from repro.db.query import Comparison, JoinCondition, Predicate, SelectQuery, TableRef
from repro.db.schema import Schema, TableSchema

__all__ = ["build_query"]


def _display_column(table: TableSchema) -> str:
    """The column shown for a table mapped as a whole: first non-key TEXT
    column, else the first primary-key column."""
    for column in table.columns:
        if column.dtype.is_textual and not table.is_key_column(column.name):
            return column.name
    return table.primary_key[0]


def _projection(
    schema: Schema, configuration: Configuration, tables: tuple[str, ...]
) -> tuple[tuple[str, str], ...]:
    """Output columns: mapped attributes first, then display columns."""
    seen: set[tuple[str, str]] = set()
    output: list[tuple[str, str]] = []

    def add(alias: str, column: str) -> None:
        if (alias, column) not in seen:
            seen.add((alias, column))
            output.append((alias, column))

    for mapping in configuration.attribute_mappings():
        state = mapping.state
        assert state.column is not None
        add(state.table, state.column)
    for mapping in configuration.table_mappings():
        add(
            mapping.state.table,
            _display_column(schema.table(mapping.state.table)),
        )
    for mapping in configuration.domain_mappings():
        state = mapping.state
        assert state.column is not None
        add(state.table, state.column)
    if not output:
        for table in tables:
            add(table, _display_column(schema.table(table)))
    return tuple(output)


def build_query(
    schema: Schema,
    interpretation: Interpretation,
    limit: int | None = None,
) -> SelectQuery:
    """Build the SQL query denoted by *interpretation*.

    Args:
        schema: the source schema (for display-column selection).
        interpretation: the configuration + join path to materialise.
        limit: optional LIMIT applied to the generated query.

    Returns:
        A :class:`SelectQuery` using table names as aliases (the schema
        graph contains each attribute once, so no self-joins arise).
    """
    configuration = interpretation.configuration
    tables = tuple(sorted(interpretation.tables))
    table_refs = tuple(TableRef.of(name) for name in tables)

    joins = tuple(
        JoinCondition(fk.table, fk.column, fk.ref_table, fk.ref_column)
        for fk in interpretation.tree.foreign_keys()
    )

    predicates = tuple(
        Predicate(m.state.table, m.state.column, Comparison.CONTAINS, m.keyword)
        for m in configuration.domain_mappings()
        if m.state.column is not None
    )

    return SelectQuery(
        tables=table_refs,
        joins=joins,
        predicates=predicates,
        projection=_projection(schema, configuration, tables),
        distinct=True,
        limit=limit,
    )
