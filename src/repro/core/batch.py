"""Fork-based process-pool execution for CPU-bound batch fan-out.

``search_many`` workloads are embarrassingly parallel — per-query answers
never depend on cross-query cache state — but Python threads cannot run
the numeric kernels concurrently. This module provides the one primitive
both batch tiers (:meth:`Quest.search_many`,
:meth:`MultiSourceQuest.search_many`) build on: map a worker function
over items in ``fork``-spawned processes that *inherit* the engine
through copy-on-write memory instead of pickling it.

The inheritance trick is what makes arbitrary engines shippable: a
:class:`Quest` holds locks, an open SQLite connection, numpy models — a
pickle round trip is fragile, a fork copy is free. The payload is parked
in a module global immediately before the pool forks and every child
reads it back through :func:`payload`; only the (small) work items and
results cross the process boundary.

Consequences callers must respect:

- only available where ``fork`` is (Linux, most BSDs); callers fall back
  to sequential execution elsewhere (:func:`fork_available`);
- thread pools do not survive a fork — objects holding one must shut it
  down before fanning out (``MultiSourceQuest`` does);
- children see a *snapshot*: cache warm-up inside a worker is invisible
  to the parent, and file-backed stores shared with the parent should
  not be written from workers.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

from repro.errors import QuestError

__all__ = ["fork_available", "in_worker", "payload", "run_forked"]

#: The object forked workers inherit; set only for the duration of one
#: :func:`run_forked` call.
_PAYLOAD: Any = None
#: Serialises concurrent batches: the payload global must belong to
#: exactly one in-flight pool, or two threads' workers would cross-wire
#: engines. Acquired non-blocking — a sibling thread that loses the race
#: gets ``None`` from :func:`run_forked` and falls back to its
#: sequential loop instead of queueing behind a long fan-out.
_PAYLOAD_LOCK = threading.Lock()
#: True only inside a forked worker (set by the pool initializer after
#: the fork). Distinguishes a nested fan-out attempt — refused, the
#: child's copy of the pool machinery is unusable — from a concurrent
#: sibling thread's batch, which simply waits its turn on the lock.
_IN_WORKER = False


def fork_available() -> bool:
    """Whether this platform can fork worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def in_worker() -> bool:
    """Whether this process is a forked batch worker.

    Batch entry points check this (alongside :func:`fork_available`) and
    fall back to sequential execution — a worker forking its own pool
    would copy half-consumed pool machinery.
    """
    return _IN_WORKER


def payload() -> Any:
    """The inherited payload, from inside a forked worker."""
    if _PAYLOAD is None:
        raise QuestError("no forked batch is active")
    return _PAYLOAD


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _invoke(packed: tuple[Callable[[Any], Any], Any]) -> Any:
    worker, item = packed
    return worker(item)


def run_forked(
    context: Any,
    worker: Callable[[Any], Any],
    items: Sequence[Any],
    workers: int,
    prefork: Callable[[], None] | None = None,
) -> list[Any] | None:
    """``[worker(item) for item in items]`` across forked processes.

    *context* is parked in the module global before the pool forks, so
    *worker* — which must be a module-level function, it crosses the
    process boundary by qualified name — reads it via :func:`payload`.
    Results come back in input order; a worker exception propagates to
    the caller (cancelling the remaining items), matching the strict
    sequential semantics.

    Returns ``None`` when a sibling thread's forked batch already owns
    the payload global. The lock is acquired *non-blocking*: every
    caller has a sequential loop to fall back to, and degrading to it
    immediately beats stalling a latency-bounded request behind another
    batch's minutes-long fan-out.

    *prefork* runs after the lock is won but before any process forks —
    the hook for teardown that must precede a fork (shutting down thread
    pools, which do not survive one) and that would be wasted work on
    the contended path where no fork happens.
    """
    global _PAYLOAD
    if not fork_available():  # pragma: no cover - platform dependent
        raise QuestError("forked batch execution needs the 'fork' start method")
    if _IN_WORKER:
        # Backstop only: batch entry points check in_worker() and run
        # sequentially instead of calling this from a forked worker.
        raise QuestError("forked batches do not nest")
    if not _PAYLOAD_LOCK.acquire(blocking=False):
        return None
    try:
        if prefork is not None:
            prefork()
        _PAYLOAD = context
        try:
            width = max(1, min(workers, len(items)))
            with ProcessPoolExecutor(
                max_workers=width,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_mark_worker,
            ) as pool:
                return list(
                    pool.map(
                        _invoke,
                        [(worker, item) for item in items],
                        chunksize=max(1, len(items) // (width * 4)),
                    )
                )
        finally:
            _PAYLOAD = None
    finally:
        _PAYLOAD_LOCK.release()
