"""Integer-bitmask helpers shared by the numeric kernels.

A leaf module (no intra-package dependencies): both the Dempster-Shafer
focal-element encoding (:mod:`repro.dst.mass`) and the bitmask Steiner
enumeration (:mod:`repro.steiner.topk`) iterate set bits of Python
integers of arbitrary width.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["iter_bits"]


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of a non-negative *mask*, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
