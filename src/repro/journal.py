"""Write-ahead mutation journal: the durability floor of live mutation.

Every batched mutation (``add_rows``/``delete_rows``) is appended here
*before* it is applied to the storage backend, and the append is fsync'd
before the mutation is acknowledged — so an acknowledged write survives
``kill -9`` at any later point and is reconstructed by replay on boot.

Record framing (all integers little-endian)::

    [length: u32][crc32c: u32][payload: `length` bytes of UTF-8 JSON]

The payload is a compact JSON object::

    {"seq": <int>, "op": "add"|"delete", "table": <name>,
     "rows": [[...], ...]}            # op == "add"
    {"seq": ..., "op": "delete", "table": ..., "keys": [[...], ...]}

``seq`` is a per-journal monotonic sequence number starting at 1; it is
the unit the artifact *generation* and the backend's ``applied_seq``
speak in. Dates are journaled as ISO strings and booleans as JSON
booleans; replay funnels rows back through the schema's normalisation
(:func:`repro.db.types.coerce`), so a round-tripped row is value-equal
to the original.

Torn tails: a crash mid-append can leave a partial record at the end of
the file. :meth:`MutationJournal.open` scans forward record by record,
verifying each length/CRC pair, and truncates the file at the first
invalid byte — everything before it is intact (CRC32C-verified),
everything after was never acknowledged. A corrupt record *before* the
tail (bit rot, not a torn write) raises :class:`JournalCorruptError`
instead: silently dropping acknowledged history is the one thing a
journal must never do.

The checksum is CRC32C (Castagnoli) — the polynomial used by ext4,
iSCSI and leveldb journals — implemented in pure Python (table-driven;
the stdlib only ships the IEEE polynomial as ``zlib.crc32``). Journal
records are small, so the software CRC is never on a hot path.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass
from datetime import date
from pathlib import Path
from typing import Any, Iterator

from repro import faults
from repro.errors import JournalCorruptError, JournalError

__all__ = ["MutationJournal", "MutationRecord", "crc32c"]

_HEADER = struct.Struct("<II")  # (payload length, crc32c of payload)
#: Guard against reading an absurd length from a torn/corrupt header.
_MAX_RECORD_BYTES = 64 * 1024 * 1024

_CRC32C_POLY = 0x82F63B78


def _crc_table() -> list[int]:
    table = []
    for index in range(256):
        crc = index
        for _ in range(8):
            crc = (crc >> 1) ^ _CRC32C_POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_CRC_TABLE = _crc_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC32C (Castagnoli) of *data*, optionally continuing from *crc*."""
    crc ^= 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _CRC_TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def _json_default(value: Any) -> Any:
    if isinstance(value, date):
        return value.isoformat()
    raise TypeError(f"cannot journal value of type {type(value).__name__}")


@dataclass(frozen=True)
class MutationRecord:
    """One acknowledged (or at least fully journaled) mutation."""

    seq: int
    op: str
    table: str
    rows: tuple[tuple, ...] = ()
    keys: tuple[tuple, ...] = ()

    @classmethod
    def from_payload(cls, payload: dict) -> "MutationRecord":
        return cls(
            seq=int(payload["seq"]),
            op=str(payload["op"]),
            table=str(payload["table"]),
            rows=tuple(tuple(row) for row in payload.get("rows", ())),
            keys=tuple(tuple(key) for key in payload.get("keys", ())),
        )


class MutationJournal:
    """Append-only, CRC-framed, fsync'd mutation log for one source.

    Opening scans the whole file: valid records establish ``last_seq``,
    a torn tail is truncated (``truncated_bytes`` records how much), a
    corrupt interior record raises :class:`JournalCorruptError`.

    ``readonly=True`` opens a *follower* view for a process that only
    replays (a prefork worker catching up to a republished artifact):
    the file is opened read-only, a torn tail is skipped but **never**
    truncated (the writer may be mid-append at that very byte), and
    :meth:`append` refuses. Only the owning writer repairs the file.
    """

    def __init__(self, path: str | os.PathLike, readonly: bool = False) -> None:
        self.path = Path(path)
        self.readonly = readonly
        self.truncated_bytes = 0
        self._last_seq = 0
        self._record_count = 0
        self._closed = False
        if readonly:
            # Followers never create or repair: the file must exist.
            self._file = open(self.path, "rb")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # "a+b" creates the file when missing and confines every
            # write to the end — exactly the append-only discipline the
            # format assumes. Reads seek freely.
            self._file = open(self.path, "a+b")
        try:
            self._scan()
        except BaseException:
            self._file.close()
            raise

    # -- opening ---------------------------------------------------------

    def _scan(self) -> None:
        """Validate the file, set ``last_seq``, truncate a torn tail."""
        self._file.seek(0)
        data = self._file.read()
        offset = 0
        end = len(data)
        valid_end = 0
        while offset < end:
            frame = self._frame_at(data, offset)
            if frame is None:  # torn tail: truncate and stop
                break
            payload_bytes, next_offset = frame
            try:
                record = MutationRecord.from_payload(json.loads(payload_bytes))
            except (ValueError, KeyError, TypeError) as exc:
                raise JournalCorruptError(
                    f"{self.path}: CRC-valid record at byte {offset} is not "
                    f"a mutation payload: {exc}"
                ) from exc
            if record.seq != self._last_seq + 1:
                raise JournalCorruptError(
                    f"{self.path}: sequence gap at byte {offset}: expected "
                    f"seq {self._last_seq + 1}, found {record.seq}"
                )
            self._last_seq = record.seq
            self._record_count += 1
            valid_end = next_offset
            offset = next_offset
        if valid_end < end:
            tail = end - valid_end
            # A torn record can only be the *last* thing in the file —
            # every append is framed and fsync'd before the next starts.
            # Anything CRC-invalid after a valid interior record is
            # therefore a torn tail, never silent interior loss.
            self.truncated_bytes = tail
            if not self.readonly:
                self._file.truncate(valid_end)
                self._file.flush()
                os.fsync(self._file.fileno())
        self._file.seek(0, os.SEEK_END)

    @staticmethod
    def _frame_at(data: bytes, offset: int) -> tuple[bytes, int] | None:
        """The payload at *offset* and the next offset, or ``None`` if torn."""
        if offset + _HEADER.size > len(data):
            return None
        length, checksum = _HEADER.unpack_from(data, offset)
        if length > _MAX_RECORD_BYTES:
            return None
        start = offset + _HEADER.size
        if start + length > len(data):
            return None
        payload = data[start : start + length]
        if crc32c(payload) != checksum:
            return None
        return payload, start + length

    # -- writing ---------------------------------------------------------

    def append(
        self,
        op: str,
        table: str,
        rows: tuple[tuple, ...] | list | None = None,
        keys: tuple[tuple, ...] | list | None = None,
    ) -> int:
        """Frame, append and fsync one mutation; return its ``seq``.

        Returning *is* the acknowledgement: once this method returns,
        the record is durable and recovery will replay it.
        """
        if self._closed:
            raise JournalError(f"{self.path}: journal is closed")
        if self.readonly:
            raise JournalError(f"{self.path}: journal opened readonly")
        if op not in ("add", "delete"):
            raise JournalError(f"unknown journal op {op!r}")
        seq = self._last_seq + 1
        payload: dict[str, Any] = {"seq": seq, "op": op, "table": table}
        if rows is not None:
            payload["rows"] = [list(row) for row in rows]
        if keys is not None:
            payload["keys"] = [list(key) for key in keys]
        data = json.dumps(
            payload, separators=(",", ":"), default=_json_default
        ).encode("utf-8")
        faults.fire("journal.append")
        self._file.write(_HEADER.pack(len(data), crc32c(data)))
        self._file.write(data)
        self._file.flush()
        faults.fire("fs.fsync")
        os.fsync(self._file.fileno())
        self._last_seq = seq
        self._record_count += 1
        return seq

    # -- reading ---------------------------------------------------------

    def records(self, after_seq: int = 0) -> Iterator[MutationRecord]:
        """Yield every journaled record with ``seq > after_seq``, in order."""
        if self._closed:
            raise JournalError(f"{self.path}: journal is closed")
        self._file.flush()
        self._file.seek(0)
        data = self._file.read()
        self._file.seek(0, os.SEEK_END)
        offset = 0
        while offset < len(data):
            frame = self._frame_at(data, offset)
            if frame is None:  # pragma: no cover - scan() truncated tails
                break
            payload_bytes, offset = frame
            record = MutationRecord.from_payload(json.loads(payload_bytes))
            if record.seq > after_seq:
                yield record

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable record (0 when empty)."""
        return self._last_seq

    def __len__(self) -> int:
        return self._record_count

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._file.close()

    def __enter__(self) -> "MutationJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MutationJournal(path={str(self.path)!r}, "
            f"records={self._record_count}, last_seq={self._last_seq})"
        )
