"""Fork-safety: library locks re-initialised in forked children.

The batch tier (:mod:`repro.core.batch`) forks worker processes while
sibling threads may be mid-search on the shared engine — and a ``fork``
copies every lock in whatever state the instant snapshot caught it. A
lock held by a thread that does not exist in the child would deadlock
the first worker that touches it (the emission cache, the trace
mirrors, ...).

The cure: lock *holders* register here at construction, and an
``os.register_at_fork`` child hook hands every registered holder a
fresh, unlocked lock right after the fork. This is sound because a
newly forked CPython child has exactly one thread — no thread in the
child can legitimately hold any of these locks — and because CPython's
GIL means other threads were paused at bytecode boundaries, so the
*data* the locks guard is structurally consistent (at worst a cache
entry is mid-refresh, which the cache semantics tolerate).

Registration uses a weak mapping: holders never leak, and the hook
walks only live objects. A leaf module (stdlib-only) so the lowest
layers (``repro.cache``) can use it.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Any, Callable

__all__ = ["register_lock_holder"]

#: holder -> resetter(holder); the resetter installs fresh lock(s).
_HOLDERS: "weakref.WeakKeyDictionary[Any, Callable[[Any], None]]" = (
    weakref.WeakKeyDictionary()
)
_REGISTRY_LOCK = threading.Lock()


def register_lock_holder(holder: Any, resetter: Callable[[Any], None]) -> None:
    """Arrange for *resetter(holder)* to run in every forked child.

    The resetter must replace the holder's lock attribute(s) with fresh
    unlocked instances (and nothing else — child-side state repair
    beyond locks belongs to the holder's own fork contract).
    """
    with _REGISTRY_LOCK:
        _HOLDERS[holder] = resetter


def _reset_in_child() -> None:  # pragma: no cover - runs post-fork only
    # The child is single-threaded: no lock ordering concerns, and the
    # registry lock itself must be replaced first in case the fork
    # caught a sibling inside register_lock_holder.
    global _REGISTRY_LOCK
    _REGISTRY_LOCK = threading.Lock()
    for holder, resetter in list(_HOLDERS.items()):
        resetter(holder)


if hasattr(os, "register_at_fork"):  # pragma: no branch - CPython >= 3.7
    os.register_at_fork(after_in_child=_reset_in_child)
