"""QUEST reproduction: keyword search over relational data.

A faithful, self-contained reimplementation of *QUEST: A Keyword Search
System for Relational Data based on Semantic and Machine Learning
Techniques* (Bergamaschi, Guerra, Interlandi, Trillo-Lado, Velegrakis —
PVLDB 6(12), 2013), including every substrate the system depends on: an
in-memory relational engine with full-text indexing, a Hidden Markov Model
forward step with List Viterbi decoding, a schema-graph Steiner-tree
backward step with mutual-information edge weights, and a Dempster-Shafer
evidence combiner.

Quickstart::

    from repro import Quest, FullAccessWrapper
    from repro.datasets import imdb

    db = imdb.generate(movies=500, seed=7)
    engine = Quest(FullAccessWrapper(db))
    for explanation in engine.search("kubrick movies 1968"):
        print(explanation)
"""

from repro.core import (
    Configuration,
    Explanation,
    Interpretation,
    KeywordMapping,
    Quest,
    QuestSettings,
)
from repro.db import (
    Column,
    ColumnRef,
    Database,
    ForeignKey,
    Schema,
    SelectQuery,
    TableSchema,
)
from repro.errors import QuestError, ServiceOverloadedError
from repro.feedback import FeedbackStore, FeedbackTrainer, SimulatedUser
from repro.service import QuestService, ServiceSettings
from repro.storage import (
    MemoryBackend,
    SQLiteBackend,
    StorageBackend,
    create_backend,
)
from repro.wrapper import FullAccessWrapper, HiddenSourceWrapper

__version__ = "0.1.0"

__all__ = [
    "Column",
    "ColumnRef",
    "Configuration",
    "Database",
    "Explanation",
    "FeedbackStore",
    "FeedbackTrainer",
    "ForeignKey",
    "FullAccessWrapper",
    "HiddenSourceWrapper",
    "Interpretation",
    "KeywordMapping",
    "MemoryBackend",
    "Quest",
    "QuestError",
    "QuestService",
    "QuestSettings",
    "SQLiteBackend",
    "ServiceOverloadedError",
    "ServiceSettings",
    "Schema",
    "SelectQuery",
    "SimulatedUser",
    "StorageBackend",
    "TableSchema",
    "create_backend",
    "__version__",
]
