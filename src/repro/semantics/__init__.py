"""Semantic toolkit: tokenisation, stemming, similarity, lexicon, shapes.

These are the "semantic techniques" of the paper's title: lightweight
linguistic machinery that lets the forward step and the hidden-source
wrapper relate free-form keywords to schema vocabulary without touching the
database instance.
"""

from repro.semantics.lexicon import Lexicon, default_lexicon
from repro.semantics.recognizers import (
    matches_datatype,
    matches_pattern,
    shape_score,
)
from repro.semantics.similarity import (
    edit_similarity,
    jaro_winkler,
    levenshtein,
    term_similarity,
    token_set_similarity,
    trigram_similarity,
)
from repro.semantics.stemmer import same_stem, stem
from repro.semantics.tokenize import (
    STOPWORDS,
    normalize,
    split_identifier,
    tokenize_query,
)

__all__ = [
    "Lexicon",
    "STOPWORDS",
    "default_lexicon",
    "edit_similarity",
    "jaro_winkler",
    "levenshtein",
    "matches_datatype",
    "matches_pattern",
    "normalize",
    "same_stem",
    "shape_score",
    "split_identifier",
    "stem",
    "term_similarity",
    "token_set_similarity",
    "tokenize_query",
]
