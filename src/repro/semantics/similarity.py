"""String similarity measures used for keyword-to-schema-term matching.

The forward step (and the hidden-source wrapper especially) needs graded
similarity between a user keyword and schema vocabulary: exact matches are
best, then stem matches, then fuzzy matches. All measures here return a
similarity in ``[0, 1]`` with 1 meaning identical.
"""

from __future__ import annotations

from repro.semantics.stemmer import same_stem
from repro.semantics.tokenize import split_identifier

__all__ = [
    "levenshtein",
    "edit_similarity",
    "jaro",
    "jaro_winkler",
    "trigram_similarity",
    "token_set_similarity",
    "term_similarity",
]


def levenshtein(left: str, right: str) -> int:
    """Classic edit distance (insert / delete / substitute, unit costs)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for i, l_char in enumerate(left, start=1):
        current = [i]
        for j, r_char in enumerate(right, start=1):
            cost = 0 if l_char == r_char else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def edit_similarity(left: str, right: str) -> float:
    """Edit distance normalised to a ``[0, 1]`` similarity."""
    if not left and not right:
        return 1.0
    longest = max(len(left), len(right))
    return 1.0 - levenshtein(left, right) / longest


def jaro(left: str, right: str) -> float:
    """Jaro similarity."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    window = max(len(left), len(right)) // 2 - 1
    window = max(window, 0)
    left_matched = [False] * len(left)
    right_matched = [False] * len(right)
    matches = 0
    for i, char in enumerate(left):
        lo = max(0, i - window)
        hi = min(len(right), i + window + 1)
        for j in range(lo, hi):
            if not right_matched[j] and right[j] == char:
                left_matched[i] = True
                right_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(left_matched):
        if not matched:
            continue
        while not right_matched[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    m = float(matches)
    return (m / len(left) + m / len(right) + (m - transpositions) / m) / 3.0


def jaro_winkler(left: str, right: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted for common prefixes."""
    base = jaro(left, right)
    prefix = 0
    for l_char, r_char in zip(left, right):
        if l_char != r_char or prefix == 4:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def _trigrams(text: str) -> set[str]:
    padded = f"  {text} "
    return {padded[i : i + 3] for i in range(len(padded) - 2)}


def trigram_similarity(left: str, right: str) -> float:
    """Jaccard similarity over padded character trigrams."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    left_grams = _trigrams(left.casefold())
    right_grams = _trigrams(right.casefold())
    union = left_grams | right_grams
    if not union:
        return 0.0
    return len(left_grams & right_grams) / len(union)


def token_set_similarity(left: str, right: str) -> float:
    """Jaccard similarity over identifier word parts with stem folding.

    ``release_year`` vs ``year released`` → both reduce to stem sets with a
    large overlap. Used for multi-word keywords against compound schema
    names.
    """
    from repro.semantics.stemmer import stem

    left_tokens = {stem(t) for t in split_identifier(left)}
    right_tokens = {stem(t) for t in split_identifier(right)}
    if not left_tokens and not right_tokens:
        return 1.0
    union = left_tokens | right_tokens
    if not union:
        return 0.0
    return len(left_tokens & right_tokens) / len(union)


def term_similarity(keyword: str, term: str) -> float:
    """Composite keyword-to-schema-term similarity in ``[0, 1]``.

    The measure the QUEST forward step uses when full-text evidence is not
    decisive: exact match 1.0, stem match 0.95, otherwise the maximum of the
    token-set, Jaro-Winkler and trigram scores (each capturing a different
    error mode: compound names, typos-at-the-start, general fuzziness).
    """
    keyword_folded = keyword.casefold().strip()
    term_folded = term.casefold().strip()
    if not keyword_folded or not term_folded:
        return 0.0
    if keyword_folded == term_folded:
        return 1.0
    if same_stem(keyword_folded, term_folded):
        return 0.95
    return max(
        token_set_similarity(keyword_folded, term_folded),
        jaro_winkler(keyword_folded, term_folded) * 0.9,
        trigram_similarity(keyword_folded, term_folded) * 0.9,
    )
