"""A compact suffix-stripping stemmer.

Schema terms are usually singular (``movie``, ``person``) while keywords are
often plural or inflected (``movies``, ``directed``). A full Porter stemmer
is unnecessary for this matching problem; this implementation covers the
Porter step-1 family plus the irregular plurals that actually occur in the
demo schemas, and is deliberately conservative: when in doubt it returns the
word unchanged, because a wrong merge is worse than a missed one here.
"""

from __future__ import annotations

__all__ = ["stem", "same_stem"]

_IRREGULAR = {
    "people": "person",
    "children": "child",
    "men": "man",
    "women": "woman",
    "feet": "foot",
    "mice": "mouse",
    "geese": "goose",
    "countries": "country",
    "cities": "city",
    "movies": "movie",
    "series": "series",
}

_KEEP_SHORT = 3  # never stem below this many characters


def stem(word: str) -> str:
    """Return a canonical stem for *word* (already lower-cased)."""
    word = word.casefold()
    if word in _IRREGULAR:
        return _IRREGULAR[word]
    if len(word) <= _KEEP_SHORT:
        return word
    # -ies -> -y  (categories -> category)
    if word.endswith("ies") and len(word) > 4:
        return word[:-3] + "y"
    # -sses -> -ss (classes -> class)
    if word.endswith("sses"):
        return word[:-2]
    # -xes, -ches, -shes -> strip es (boxes -> box, matches -> match)
    if word.endswith("es") and len(word) > 4:
        base = word[:-2]
        if base.endswith(("x", "ch", "sh", "ss", "z")):
            return base
        return word[:-1]  # movies handled above; titles -> title
    # plain plural -s (but not -ss, -us, -is)
    if word.endswith("s") and not word.endswith(("ss", "us", "is")):
        return word[:-1]
    # -ing with doubled consonant or plain (directing -> direct)
    if word.endswith("ing") and len(word) > 5:
        base = word[:-3]
        if len(base) >= 3 and base[-1] == base[-2] and base[-1] not in "aeiou":
            return base[:-1]
        return base
    # -ed (directed -> direct)
    if word.endswith("ed") and len(word) > 4:
        base = word[:-2]
        if len(base) >= 3 and base[-1] == base[-2] and base[-1] not in "aeiou":
            return base[:-1]
        return base
    return word


def same_stem(left: str, right: str) -> bool:
    """Whether two words share a stem (symmetric, case-insensitive)."""
    return stem(left) == stem(right)
