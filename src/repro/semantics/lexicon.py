"""A small built-in lexicon: synonym and hypernym knowledge for matching.

The paper's wrapper consults "external ontologies" to guess which attributes
a keyword may refer to. Offline, we ship a compact curated lexicon covering
the vocabulary of the three demo domains (movies, bibliography, geography)
plus generic database words; users can extend it at run time or load their
own from a plain dict.

The lexicon is deliberately *word-level* (no senses): QUEST only needs a
soft signal that e.g. ``film`` may mean ``movie`` and that ``actor`` is a
kind of ``person``.
"""

from __future__ import annotations

from collections import defaultdict

from repro.semantics.stemmer import stem

__all__ = ["Lexicon", "default_lexicon"]

#: Synonym rings: every word in a ring is a synonym of every other.
_SYNONYM_RINGS: tuple[tuple[str, ...], ...] = (
    ("movie", "film", "picture", "feature"),
    ("actor", "actress", "performer", "star", "cast"),
    ("director", "filmmaker", "auteur"),
    ("genre", "category", "kind", "type"),
    ("year", "date"),
    ("title", "name", "heading"),
    ("rating", "score", "grade", "stars"),
    ("person", "people", "individual", "human"),
    ("author", "writer", "creator"),
    ("paper", "article", "publication", "pub"),
    ("conference", "venue", "proceedings", "meeting"),
    ("journal", "periodical", "magazine"),
    ("country", "nation", "state"),
    ("city", "town", "municipality", "metropolis"),
    ("capital", "seat"),
    ("population", "inhabitants", "residents"),
    ("river", "stream", "waterway"),
    ("mountain", "peak", "summit"),
    ("lake", "loch"),
    ("area", "surface", "extent"),
    ("language", "tongue"),
    ("religion", "faith", "creed"),
    ("continent", "landmass"),
    ("organization", "organisation", "body", "institution"),
    ("member", "affiliate"),
    ("province", "region", "district", "territory"),
    ("company", "firm", "studio", "producer"),
    ("salary", "wage", "pay", "income"),
    ("employee", "worker", "staff"),
    ("customer", "client", "buyer"),
    ("address", "location", "place"),
    ("phone", "telephone", "mobile"),
    ("email", "mail"),
)

#: Hypernym edges ``(specific, general)``.
_HYPERNYM_EDGES: tuple[tuple[str, str], ...] = (
    ("actor", "person"),
    ("director", "person"),
    ("author", "person"),
    ("employee", "person"),
    ("customer", "person"),
    ("city", "place"),
    ("country", "place"),
    ("province", "place"),
    ("capital", "city"),
    ("river", "water"),
    ("lake", "water"),
    ("sea", "water"),
    ("comedy", "genre"),
    ("drama", "genre"),
    ("thriller", "genre"),
    ("horror", "genre"),
    ("western", "genre"),
    ("documentary", "genre"),
    ("journal", "venue"),
    ("conference", "venue"),
    ("paper", "document"),
    ("book", "document"),
    ("thesis", "document"),
)


class Lexicon:
    """Word-level synonym/hypernym knowledge with stem folding."""

    def __init__(
        self,
        synonym_rings: tuple[tuple[str, ...], ...] = (),
        hypernym_edges: tuple[tuple[str, str], ...] = (),
    ) -> None:
        self._synonyms: dict[str, set[str]] = defaultdict(set)
        self._hypernyms: dict[str, set[str]] = defaultdict(set)
        self._hyponyms: dict[str, set[str]] = defaultdict(set)
        #: Bumped on every mutation; consumers (the ontology score memo)
        #: stamp it into cache keys so entries computed against an older
        #: vocabulary become unreachable instead of stale.
        self.version = 0
        for ring in synonym_rings:
            self.add_synonym_ring(*ring)
        for specific, general in hypernym_edges:
            self.add_hypernym(specific, general)

    # -- construction ----------------------------------------------------

    def add_synonym_ring(self, *words: str) -> None:
        """Declare every pair among *words* to be synonyms."""
        stems = {stem(word) for word in words}
        for word_stem in stems:
            self._synonyms[word_stem] |= stems - {word_stem}
        self.version += 1

    def add_hypernym(self, specific: str, general: str) -> None:
        """Declare *general* a hypernym of *specific*."""
        specific_stem, general_stem = stem(specific), stem(general)
        self._hypernyms[specific_stem].add(general_stem)
        self._hyponyms[general_stem].add(specific_stem)
        self.version += 1

    # -- queries -----------------------------------------------------------

    def synonyms(self, word: str) -> set[str]:
        """Stems synonymous with *word* (excluding the word itself)."""
        return set(self._synonyms.get(stem(word), ()))

    def hypernyms(self, word: str) -> set[str]:
        """Direct hypernym stems of *word*."""
        return set(self._hypernyms.get(stem(word), ()))

    def hyponyms(self, word: str) -> set[str]:
        """Direct hyponym stems of *word*."""
        return set(self._hyponyms.get(stem(word), ()))

    def are_synonyms(self, left: str, right: str) -> bool:
        """Whether the two words share a stem or a synonym ring."""
        left_stem, right_stem = stem(left), stem(right)
        if left_stem == right_stem:
            return True
        return right_stem in self._synonyms.get(left_stem, ())

    def relatedness(self, left: str, right: str) -> float:
        """Graded semantic relatedness in ``[0, 1]``.

        1.0 for same stem, 0.9 for synonyms, 0.7 for a direct hypernym /
        hyponym hop, 0.5 for sharing a hypernym (siblings), else 0.0.
        """
        left_stem, right_stem = stem(left), stem(right)
        if left_stem == right_stem:
            return 1.0
        if self.are_synonyms(left_stem, right_stem):
            return 0.9
        ups_left = self._hypernyms.get(left_stem, set())
        ups_right = self._hypernyms.get(right_stem, set())
        if right_stem in ups_left or left_stem in ups_right:
            return 0.7
        if ups_left & ups_right:
            return 0.5
        return 0.0

    def expand(self, word: str) -> set[str]:
        """The word's stem plus all synonyms and direct hypernyms."""
        word_stem = stem(word)
        return {word_stem} | self.synonyms(word_stem) | self.hypernyms(word_stem)


def default_lexicon() -> Lexicon:
    """The built-in lexicon covering the three demo domains."""
    return Lexicon(_SYNONYM_RINGS, _HYPERNYM_EDGES)
