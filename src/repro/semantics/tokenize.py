"""Keyword-query tokenisation.

A keyword query is a short, vague string ("movies Kubrick 1968"). The
tokeniser produces the observation sequence the forward HMM consumes:
lower-cased keywords with stopwords removed, quoted phrases kept together,
and compound identifiers (``first_name``, ``firstName``) split for matching
against schema terms.
"""

from __future__ import annotations

import re

__all__ = ["STOPWORDS", "tokenize_query", "split_identifier", "normalize"]

#: Minimal English stopword list; keyword queries are short, so we only drop
#: unambiguous glue words and keep anything that could name data.
STOPWORDS = frozenset(
    """a an and are as at be by for from in into is it of on or that the
    their then this to was were what when where which who whose with""".split()
)

_PHRASE_RE = re.compile(r'"([^"]*)"|(\S+)')
_WORD_RE = re.compile(r"[a-z0-9]+")
_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def normalize(text: str) -> str:
    """Lower-case and strip non-alphanumeric noise from one keyword."""
    return " ".join(_WORD_RE.findall(text.casefold()))


def tokenize_query(query: str, keep_stopwords: bool = False) -> list[str]:
    """Split a raw keyword query into a list of keyword observations.

    Double-quoted spans become single multi-word keywords; everything else
    splits on whitespace. Stopwords are dropped unless *keep_stopwords* (a
    phrase keeps its interior stopwords either way).
    """
    keywords: list[str] = []
    for match in _PHRASE_RE.finditer(query):
        phrase, word = match.groups()
        if phrase is not None:
            cleaned = normalize(phrase)
            if cleaned:
                keywords.append(cleaned)
            continue
        cleaned = normalize(word)
        if not cleaned:
            continue
        if not keep_stopwords and cleaned in STOPWORDS:
            continue
        keywords.append(cleaned)
    return keywords


def split_identifier(identifier: str) -> list[str]:
    """Split a schema identifier into lower-cased word parts.

    Handles ``snake_case``, ``camelCase`` and digit boundaries:
    ``releaseYear2`` → ``["release", "year", "2"]``.
    """
    spaced = _CAMEL_RE.sub(" ", identifier)
    return _WORD_RE.findall(spaced.casefold())
