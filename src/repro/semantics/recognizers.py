"""Value-shape recognisers: datatype and regex compatibility of keywords.

For hidden sources the wrapper cannot probe the instance, so deciding
whether keyword ``1968`` could belong to attribute ``movie.year`` relies on
(1) the declared datatype, (2) an optional regular expression of admissible
values attached to the column, and (3) generic shape heuristics (years,
emails, phone numbers). This module implements that machinery.
"""

from __future__ import annotations

import re

from repro.db.schema import Column
from repro.db.types import DataType, coerce
from repro.errors import SchemaError

__all__ = [
    "matches_datatype",
    "matches_pattern",
    "shape_score",
    "looks_like_year",
    "looks_like_email",
    "looks_like_number",
]

_YEAR_RE = re.compile(r"^(1[5-9]\d{2}|20\d{2}|21\d{2})$")
_EMAIL_RE = re.compile(r"^[\w.+-]+@[\w-]+\.[\w.-]+$")
_PHONE_RE = re.compile(r"^\+?[\d ()-]{7,}$")


def looks_like_year(keyword: str) -> bool:
    """Whether a keyword is plausibly a calendar year (1500-2199)."""
    return bool(_YEAR_RE.match(keyword.strip()))


def looks_like_email(keyword: str) -> bool:
    """Whether a keyword is shaped like an e-mail address."""
    return bool(_EMAIL_RE.match(keyword.strip()))


def looks_like_number(keyword: str) -> bool:
    """Whether a keyword parses as an integer or float."""
    try:
        float(keyword.strip())
    except ValueError:
        return False
    return True


def matches_datatype(keyword: str, dtype: DataType) -> bool:
    """Whether *keyword* could be a literal of *dtype*."""
    try:
        coerce(keyword, dtype)
    except SchemaError:
        return False
    return True


def matches_pattern(keyword: str, pattern: str | None) -> bool | None:
    """Match *keyword* against a column's admissible-value regex.

    Returns ``None`` when no pattern is declared (no evidence either way),
    otherwise a boolean. Patterns are anchored implicitly.
    """
    if pattern is None:
        return None
    try:
        compiled = re.compile(pattern)
    except re.error:
        return None
    return bool(compiled.fullmatch(keyword.strip()))


def shape_score(keyword: str, column: Column) -> float:
    """Compatibility of a keyword with a column, on schema evidence alone.

    Combines the declared regex (decisive when present), datatype
    compatibility and shape heuristics into a score in ``[0, 1]``. This is
    the hidden-source replacement for a full-text selectivity lookup.
    """
    pattern_verdict = matches_pattern(keyword, column.pattern)
    if pattern_verdict is True:
        return 1.0
    if pattern_verdict is False:
        return 0.0

    if not matches_datatype(keyword, column.dtype):
        return 0.0

    name_parts = set(column.name.casefold().split("_"))
    if column.dtype is DataType.INTEGER and looks_like_year(keyword):
        # A year-shaped number strongly suggests date-like integer columns.
        return 0.9 if name_parts & {"year", "founded", "established"} else 0.5
    if column.dtype is DataType.TEXT and looks_like_email(keyword):
        return 0.9 if "email" in name_parts else 0.3
    if column.dtype is DataType.TEXT and _PHONE_RE.match(keyword):
        return 0.8 if name_parts & {"phone", "telephone", "fax"} else 0.2
    if column.dtype.is_numeric and looks_like_number(keyword):
        return 0.4  # any numeric column admits a numeric keyword
    if column.dtype is DataType.TEXT and not looks_like_number(keyword):
        return 0.4  # any text column admits a word
    if column.dtype is DataType.BOOLEAN:
        return 0.3
    if column.dtype is DataType.DATE:
        return 0.6 if matches_datatype(keyword, DataType.DATE) else 0.0
    return 0.2
