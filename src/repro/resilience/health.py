"""Process-level degradation marks, surfaced through ``/readyz``.

Anything that silently switches the process onto a slower-but-correct
path (artifact corruption → dict-layout index fallback, persistent
storage failures → stale-cache serving) records a named mark here; the
HTTP tier folds the marks into the ``ok`` / ``degraded`` / ``unhealthy``
readiness answer. Marks are per-process — forked serving workers each
report their own state, so one worker running on a fallback index shows
up without tainting its siblings.
"""

from __future__ import annotations

import threading

from repro.forksafe import register_lock_holder

__all__ = ["HealthRegistry", "process_health"]


def _reset_health_lock(registry: "HealthRegistry") -> None:
    registry._lock = threading.Lock()


class HealthRegistry:
    """Thread-safe named degradation marks for one process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # The module-global registry exists before the prefork fork;
        # children must get an unheld lock (see repro.forksafe).
        register_lock_holder(self, _reset_health_lock)
        self._marks: dict[str, str] = {}

    def mark(self, reason: str, detail: str = "") -> None:
        """Record (or refresh) one degradation mark."""
        with self._lock:
            self._marks[reason] = detail

    def clear(self, reason: str) -> None:
        """Drop one mark (the condition healed)."""
        with self._lock:
            self._marks.pop(reason, None)

    def reset(self) -> None:
        """Drop every mark (test isolation)."""
        with self._lock:
            self._marks.clear()

    def degraded(self) -> bool:
        """Whether any mark is active."""
        with self._lock:
            return bool(self._marks)

    def reasons(self) -> dict[str, str]:
        """A snapshot of the active marks (reason -> detail)."""
        with self._lock:
            return dict(self._marks)


#: The per-process registry every tier reports into.
process_health = HealthRegistry()
