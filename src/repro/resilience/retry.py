"""Bounded jittered-exponential retry for transient faults.

Used for the failures that resolve themselves if asked again a moment
later: ``sqlite3.OperationalError: database is locked`` under WAL writer
contention, and index-artifact load races where a sibling process is
mid-rewrite. Delays grow exponentially with equal jitter (half fixed,
half seeded-random) so concurrent retriers decorrelate instead of
thundering back in lockstep.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

from repro.errors import QuestError

__all__ = ["RetryPolicy"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Immutable retry schedule: ``attempts`` tries, growing jittered gaps.

    Attributes:
        attempts: total tries (1 = no retry).
        base_delay_s: delay before the first retry.
        max_delay_s: cap on any single delay.
        multiplier: exponential growth factor between retries.
        seed: seeds the jitter RNG for reproducible schedules in tests;
            ``None`` uses nondeterministic jitter.
    """

    attempts: int = 3
    base_delay_s: float = 0.01
    max_delay_s: float = 0.25
    multiplier: float = 2.0
    seed: int | None = None
    _rng: random.Random = field(init=False, repr=False, compare=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.attempts <= 0:
            raise QuestError(f"attempts must be positive, got {self.attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise QuestError(
                "delays must satisfy 0 <= base_delay_s <= max_delay_s, got "
                f"{self.base_delay_s}/{self.max_delay_s}"
            )
        if self.multiplier < 1.0:
            raise QuestError(f"multiplier must be >= 1, got {self.multiplier}")
        object.__setattr__(self, "_rng", random.Random(self.seed))

    def delays(self) -> Iterator[float]:
        """The ``attempts - 1`` inter-try delays (equal jitter)."""
        raw = self.base_delay_s
        for _ in range(self.attempts - 1):
            capped = min(self.max_delay_s, raw)
            yield capped / 2.0 + self._rng.uniform(0.0, capped / 2.0)
            raw *= self.multiplier

    def call(
        self,
        fn: Callable[[], T],
        *,
        retry_on: tuple[type[BaseException], ...],
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Callable[[BaseException, int], None] | None = None,
    ) -> T:
        """Run *fn*, retrying on *retry_on* up to the attempt budget.

        The final failure propagates unwrapped so callers keep their own
        error-mapping (``ExecutionError`` wrapping, breaker recording).
        *on_retry* is invoked with (exception, attempt index) before each
        sleep — the storage tier uses it to feed the circuit breaker.
        """
        schedule = self.delays()
        attempt = 0
        while True:
            try:
                return fn()
            except retry_on as exc:
                attempt += 1
                delay = next(schedule, None)
                if delay is None:
                    raise
                if on_retry is not None:
                    on_retry(exc, attempt)
                if delay > 0:
                    sleep(delay)
