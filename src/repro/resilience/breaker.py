"""A failure-rate circuit breaker with seeded half-open probes.

Classic three-state machine guarding a dependency (here: the SQLite
backend and the columnar artifact loader):

* **closed** — calls flow; outcomes land in a sliding window. When the
  window holds at least ``min_calls`` outcomes and the failure rate
  reaches ``failure_threshold``, the breaker trips open.
* **open** — optional fast paths (:meth:`CircuitBreaker.allow`) are
  refused outright for ``reset_timeout_s`` so a wedged dependency is not
  hammered. Mandatory calls keep recording outcomes — their successes
  also heal the breaker.
* **half-open** — after the timeout, up to ``half_open_probes`` trial
  calls are admitted. All probes succeeding closes the circuit; any
  probe failing re-opens it with a seeded-jittered timeout so a fleet of
  workers does not re-probe a shared dependency in lockstep.

The clock and the jitter RNG are injectable, so chaos tests drive the
whole state machine deterministically.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.forksafe import register_lock_holder


def _reset_breaker_lock(breaker: "CircuitBreaker") -> None:
    breaker._lock = threading.Lock()

from repro.errors import CircuitOpenError, QuestError

__all__ = ["BreakerSettings", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerSettings:
    """Tunables for one :class:`CircuitBreaker`.

    Attributes:
        window: number of most-recent call outcomes considered.
        failure_threshold: failure rate over the window that trips the
            breaker (0 < rate <= 1).
        min_calls: outcomes required in the window before the rate is
            meaningful — a single early failure must not trip the circuit.
        reset_timeout_s: how long the circuit stays open before probing.
        half_open_probes: trial calls admitted in the half-open state.
        jitter: fraction of ``reset_timeout_s`` added as seeded random
            jitter each time the circuit (re-)opens.
    """

    window: int = 32
    failure_threshold: float = 0.5
    min_calls: int = 5
    reset_timeout_s: float = 5.0
    half_open_probes: int = 2
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise QuestError(f"window must be positive, got {self.window}")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise QuestError(
                f"failure_threshold must be in (0, 1], got {self.failure_threshold}"
            )
        if self.min_calls <= 0:
            raise QuestError(f"min_calls must be positive, got {self.min_calls}")
        if self.reset_timeout_s <= 0:
            raise QuestError(
                f"reset_timeout_s must be positive, got {self.reset_timeout_s}"
            )
        if self.half_open_probes <= 0:
            raise QuestError(
                f"half_open_probes must be positive, got {self.half_open_probes}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise QuestError(f"jitter must be in [0, 1], got {self.jitter}")


class CircuitBreaker:
    """Thread-safe breaker shared by every caller of one dependency."""

    def __init__(
        self,
        name: str,
        settings: BreakerSettings | None = None,
        *,
        seed: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = name
        self.settings = settings or BreakerSettings()
        self._clock = clock
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        # Breakers ride into forked serving workers attached to the
        # backend; reset the lock in children (see repro.forksafe).
        register_lock_holder(self, _reset_breaker_lock)
        self._outcomes: deque[bool] = deque(maxlen=self.settings.window)
        self._state = CLOSED
        self._opened_at = 0.0
        self._open_for = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0

    # -- state -------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state (``closed`` / ``open`` / ``half-open``).

        Reading the state performs the open → half-open transition when
        the reset timeout has elapsed.
        """
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self._open_for
        ):
            self._state = HALF_OPEN
            self._probes_in_flight = 0
            self._probe_successes = 0
        return self._state

    def _trip_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._open_for = self.settings.reset_timeout_s * (
            1.0 + self.settings.jitter * self._rng.random()
        )

    # -- admission ---------------------------------------------------------

    def allow(self) -> bool:
        """Whether an *optional* call should be attempted right now.

        Closed: yes. Open: no. Half-open: yes for the first
        ``half_open_probes`` askers (they become the trial calls), no for
        the rest — record the outcome of every allowed call.
        """
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                return True
            if state == OPEN:
                return False
            if self._probes_in_flight < self.settings.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False

    def check(self) -> None:
        """Like :meth:`allow` but raises :class:`CircuitOpenError` on refusal."""
        if not self.allow():
            raise CircuitOpenError(self.name)

    # -- outcome recording -------------------------------------------------

    def record_success(self) -> None:
        """Record one successful call against the guarded dependency."""
        with self._lock:
            state = self._state_locked()
            self._outcomes.append(True)
            if state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.settings.half_open_probes:
                    self._state = CLOSED
                    self._outcomes.clear()
                    self._probes_in_flight = 0
                    self._probe_successes = 0

    def record_failure(self) -> None:
        """Record one failed call; may trip or re-open the circuit."""
        with self._lock:
            state = self._state_locked()
            self._outcomes.append(False)
            if state == HALF_OPEN:
                # One failed probe ends the trial immediately.
                self._trip_locked()
                return
            if state == OPEN:
                return
            if len(self._outcomes) < self.settings.min_calls:
                return
            failures = sum(1 for ok in self._outcomes if not ok)
            if failures / len(self._outcomes) >= self.settings.failure_threshold:
                self._trip_locked()

    def snapshot(self) -> dict[str, object]:
        """State + window counters, for ``/metrics`` and ``/readyz``."""
        with self._lock:
            state = self._state_locked()
            outcomes = list(self._outcomes)
        return {
            "name": self.name,
            "state": state,
            "window": len(outcomes),
            "failures": sum(1 for ok in outcomes if not ok),
        }
