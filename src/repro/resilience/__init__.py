"""Resilience primitives: deadlines, circuit breakers, retries, health.

The building blocks the serving and storage tiers compose into graceful
degradation — see ARCHITECTURE.md "Resilience tier". Everything here is
dependency-free (stdlib only) and injectable (clocks, RNG seeds) so
chaos tests can drive each state machine deterministically.
"""

from repro.resilience.breaker import BreakerSettings, CircuitBreaker
from repro.resilience.deadline import Deadline
from repro.resilience.health import HealthRegistry, process_health
from repro.resilience.retry import RetryPolicy

__all__ = [
    "BreakerSettings",
    "CircuitBreaker",
    "Deadline",
    "HealthRegistry",
    "RetryPolicy",
    "process_health",
]
