"""Per-request time budgets, threaded through the search pipeline.

A :class:`Deadline` is created once at the service edge (from the
``X-Quest-Deadline-Ms`` header or ``QuestSettings.default_deadline_ms``)
and carried down through ``QuestService`` → ``Quest.search_context`` →
``SearchContext`` so every pipeline stage can ask one cheap question:
*is there budget left?* Stages react cooperatively — the Steiner pop
loop checks every few dozen pops and returns best-so-far trees, the
explain stage stops executing SQL once at least one explanation exists —
so a worker thread is never blocked much past the budget.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Deadline"]


class Deadline:
    """A monotonic-clock expiry point with a remembered budget.

    The clock is injectable so chaos tests can drive expiry
    deterministically instead of sleeping.
    """

    __slots__ = ("budget_ms", "_clock", "_started", "_expires")

    def __init__(
        self, budget_ms: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if budget_ms <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_ms}")
        self.budget_ms = float(budget_ms)
        self._clock = clock
        self._started = clock()
        self._expires = self._started + budget_ms / 1e3

    @classmethod
    def from_ms(
        cls,
        budget_ms: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline | None":
        """A deadline for *budget_ms*, or ``None`` for an unbounded request."""
        if budget_ms is None:
            return None
        return cls(budget_ms, clock=clock)

    def remaining_s(self) -> float:
        """Seconds of budget left (clamped at zero)."""
        return max(0.0, self._expires - self._clock())

    def elapsed_ms(self) -> float:
        """Milliseconds since the deadline was armed."""
        return (self._clock() - self._started) * 1e3

    def expired(self) -> bool:
        """Whether the budget is exhausted."""
        return self._clock() >= self._expires

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(budget_ms={self.budget_ms:.0f}, "
            f"remaining_s={self.remaining_s():.3f})"
        )
