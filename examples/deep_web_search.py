"""Querying a hidden (Deep Web) source: no indexes, no statistics.

QUEST's wrapper lets it query sources that only expose a schema and a
query endpoint — no full-text indexes, no instance statistics. This example
builds the Mondial-like geographic database, then queries it twice: once
with full access and once through a hidden-source wrapper that may only
use datatypes, regular expressions of admissible values, schema annotations
and the ontology.

Run with::

    python examples/deep_web_search.py
"""

from repro import FullAccessWrapper, HiddenSourceWrapper, Quest, QuestSettings
from repro.datasets import mondial
from repro.wrapper import AnnotationSet, ColumnAnnotation, annotate_schema


def show(engine: Quest, query: str, k: int = 3) -> None:
    print(f'  "{query}"')
    for rank, explanation in enumerate(engine.search(query, k), start=1):
        print(f"    #{rank} {explanation}")
    print()


def main() -> None:
    db = mondial.generate(countries=30, seed=23)
    print(f"Remote source instance: {db}\n")

    print("=== Full access (owned database, full-text indexes) ===")
    full_engine = Quest(FullAccessWrapper(db))
    show(full_engine, "ruritania cities")
    show(full_engine, "language zubrowka")

    print("=== Hidden source (Deep Web endpoint) ===")
    # The setup phase for hidden sources: the user enriches the schema with
    # regular expressions of admissible values and extra synonyms.
    annotations = AnnotationSet(
        table_synonyms={"country": ("land",)},
        columns={
            ("country", "name"): ColumnAnnotation(pattern=r"[A-Za-z ]+"),
            ("country", "code"): ColumnAnnotation(pattern=r"[A-Z]{2,3}\d?"),
            ("city", "population"): ColumnAnnotation(pattern=r"\d{4,9}"),
        },
    )
    enriched = annotate_schema(db.schema, annotations)

    # The engine never touches `db` directly: the wrapper only lets the
    # final SQL through (simulating a web form / endpoint), and emission
    # evidence comes from schema metadata alone.
    hidden = HiddenSourceWrapper(enriched, remote_db=db)
    hidden_engine = Quest(
        hidden,
        # No instance access: uniform join weights, and trust the forward
        # evidence a bit more than the (less informed) backward evidence.
        QuestSettings(
            mutual_information_weights=False,
            uncertainty_backward=0.5,
        ),
    )
    print(f"wrapper: {hidden!r}\n")
    # Hidden sources cannot tell which text column holds a value keyword,
    # so more candidate explanations are generated and the endpoint's
    # empty-result filtering does the disambiguation: ask for a larger k.
    show(hidden_engine, "ruritania cities", k=10)
    show(hidden_engine, "language zubrowka", k=10)

    print(
        "Note how the hidden engine still produces executable SQL with\n"
        "sensible join paths, using only schema-level evidence - the\n"
        "capability the paper highlights as unique to QUEST."
    )


if __name__ == "__main__":
    main()
