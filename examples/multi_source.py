"""Multi-source search: Algorithm 2, "Combine Results".

QUEST targets "not only owned databases, but also virtually integrated
data sources": this example runs one keyword query against two movie
databases with different content — one full-access, one hidden behind an
endpoint — and merges their explanation rankings with the Dempster-Shafer
combination, weighting each source by how much of the query it actually
understands.

Run with::

    python examples/multi_source.py
"""

from repro import FullAccessWrapper, HiddenSourceWrapper, Quest, QuestSettings
from repro.core import MultiSourceQuest
from repro.datasets import imdb


def main() -> None:
    # Two archives with disjoint seeds: different people, different movies.
    archive_a = imdb.generate(movies=150, seed=7)
    archive_b = imdb.generate(movies=150, seed=99)

    engines = {
        "archive-a": Quest(FullAccessWrapper(archive_a)),
        # The second archive sits behind an endpoint (Deep Web style).
        "archive-b": Quest(
            HiddenSourceWrapper(archive_b.schema, remote_db=archive_b),
            QuestSettings(
                mutual_information_weights=False, uncertainty_backward=0.5
            ),
        ),
    }
    multi = MultiSourceQuest(engines, ignorance={"archive-a": 0.2, "archive-b": 0.4})

    for query in ("kubrick movies", "scifi films scott"):
        print(f'Keyword query: "{query}"')
        for rank, (source, explanation) in enumerate(
            multi.search(query, k=5), start=1
        ):
            print(f"  #{rank} [{source}] {explanation}")
        print()


if __name__ == "__main__":
    main()
