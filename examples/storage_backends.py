"""Storage backends: the same search on an in-memory and a SQLite engine.

Loads one mondial instance into both registered backends, runs the same
keyword queries through a QUEST engine on each, and shows (a) that the
ranked explanations are identical — backends guarantee score parity —
and (b) that the SQLite backend persists: the file is reopened cold and
answers the same query again.

Run with::

    python examples/storage_backends.py
"""

import tempfile
from pathlib import Path

from repro import FullAccessWrapper, Quest, SQLiteBackend, create_backend
from repro.datasets import mondial
from repro.viz import render_ranking

QUERIES = ("capital ruritania", "rivers dorne")


def main() -> None:
    print("Generating the mondial demo database ...")
    db = mondial.generate(countries=15, seed=23)
    print(f"  {db}\n")

    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "mondial.db")
        engines = {
            name: Quest(FullAccessWrapper(create_backend(name, db, **options)))
            for name, options in (("memory", {}), ("sqlite", {"path": path}))
        }

        for query in QUERIES:
            print(f'Keyword query: "{query}"')
            rankings = {
                name: engine.search(query, k=3) for name, engine in engines.items()
            }
            print(render_ranking(rankings["memory"]))
            identical = rankings["memory"] == rankings["sqlite"]
            print(f"  memory == sqlite rankings: {identical}\n")

        print(f"Reopening {path} cold ...")
        engines["sqlite"].wrapper.backend.close()
        reopened = SQLiteBackend.open(db.schema, path)
        engine = Quest(FullAccessWrapper(reopened))
        explanations = engine.search(QUERIES[0], k=1)
        print(f'  "{QUERIES[0]}" from the reopened file:')
        print(render_ranking(explanations))


if __name__ == "__main__":
    main()
