"""Ambiguous queries and partial results: the demo's first two messages.

The same keyword query can admit several keyword-to-term mappings, each
with several join paths. This example mirrors the demo script: it runs an
ambiguous query, shows the partial results of the forward and backward
modules separately, then the combined explanation ranking, and finally
exports the winning join tree as Graphviz DOT.

Run with::

    python examples/movie_search.py
"""

from repro import FullAccessWrapper, Quest
from repro.datasets import imdb
from repro.viz import render_ranking, render_tree, tree_to_dot


def main() -> None:
    db = imdb.generate(movies=200, seed=7)
    engine = Quest(FullAccessWrapper(db))

    # "scott odyssey": is Scott a director or a cast member? Is odyssey a
    # movie title or a character? Multiple mappings, multiple paths.
    query = "scott odyssey"
    keywords = engine.keywords_of(query)
    print(f'Ambiguous query: "{query}"\n')

    print("-- forward module alone: top configurations (keyword mappings)")
    configurations = engine.forward(keywords, k=5)
    for rank, configuration in enumerate(configurations, start=1):
        mapping = ", ".join(str(m) for m in configuration.mappings)
        print(f"  #{rank} [{configuration.score:.3f}] {mapping}")

    print("\n-- backward module alone: join paths per configuration")
    interpretations = engine.backward(configurations, k=3)
    for interpretation in interpretations[:6]:
        print(
            f"  [{interpretation.score:.3f}] tables="
            f"{sorted(interpretation.tables)} "
            f"tree_weight={interpretation.tree.weight:.2f}"
        )

    print("\n-- combined (Dempster-Shafer): final explanations")
    ranked = engine.combine(configurations, interpretations, k=5)
    explanations = engine.explain(ranked)
    print(render_ranking(explanations))

    if explanations:
        best = explanations[0]
        print("\n-- winning join tree (ASCII)")
        print(render_tree(best.interpretation.tree))
        print("\n-- winning join tree (Graphviz DOT; pipe to `dot -Tsvg`)")
        print(tree_to_dot(best.interpretation.tree))


if __name__ == "__main__":
    main()
