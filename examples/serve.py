"""Serving QUEST over HTTP: a preforked multi-worker fleet.

Builds the Mondial-like demo database, persists its columnar full-text
index as one ``.npz`` artifact, then forks N serving workers that mmap
the shared artifact (one set of physical pages for the whole fleet) and
answer keyword queries over a tiny JSON-over-HTTP protocol::

    GET /search?q=ruritania+rivers&k=5   # ranked explanations
    GET /metrics                         # service + quota counters
    GET /healthz                         # liveness
    GET /readyz                          # readiness: ok | degraded | unhealthy

Per-tenant admission quotas ride on the ``X-Quest-Tenant`` header: a
tenant that exhausts its own slots gets 429 + Retry-After while other
tenants keep flowing; a service-wide overload is 503. SIGTERM drains
gracefully — workers finish in-flight requests before exiting.

Run with::

    python examples/serve.py                 # serve until Ctrl-C
    python examples/serve.py --demo          # boot, fire demo queries, exit
    python examples/serve.py --workers 4 --port 8080

Then, from another shell::

    curl 'http://127.0.0.1:8080/search?q=ruritania+rivers&k=3'
    curl -H 'X-Quest-Tenant: acme' 'http://127.0.0.1:8080/search?q=cities'
"""

import argparse
import tempfile
from pathlib import Path

from repro.datasets import mondial
from repro.service import (
    PreforkServer,
    PreforkSettings,
    ServiceSettings,
    TenantQuotas,
    shared_artifact_engine,
)
from repro.service.prefork import fetch_json


def build_server(workers: int, port: int, artifact_dir: Path) -> PreforkServer:
    db = mondial.generate(countries=30, seed=23)
    print(f"Demo instance: {db}")
    artifact = artifact_dir / "mondial-fulltext.npz"
    prepare, factory = shared_artifact_engine(db, artifact)
    return PreforkServer(
        factory,
        service_settings=ServiceSettings(),
        quotas_factory=lambda: TenantQuotas(max_concurrent=4, max_queue=8),
        settings=PreforkSettings(workers=workers, port=port),
        prepare=prepare,
    )


def demo(server: PreforkServer) -> None:
    """Boot the fleet, fire a few queries, show the answers, drain."""
    with server:
        server.wait_ready()
        print(
            f"Fleet ready: {len(server.worker_pids())} workers on "
            f"port {server.port}\n"
        )
        for query in ("ruritania rivers", "cities population", "capital language"):
            status, body = fetch_json(
                "127.0.0.1", server.port, f"/search?q={query.replace(' ', '+')}&k=3"
            )
            print(f'  "{query}" -> {status} (worker pid {body.get("pid")})')
            for result in body.get("results", []):
                print(
                    f"    #{result['rank'] + 1} p={result['probability']:.4f} "
                    f"rows={result['result_count']} {result['sql'][:80]}"
                )
            print()
        status, metrics = fetch_json("127.0.0.1", server.port, "/metrics")
        service = metrics.get("service", {})
        print(
            f"Worker {metrics.get('pid')} metrics: "
            f"{service.get('requests')} requests, "
            f"p95 {1e3 * (service.get('p95_latency_s') or 0):.1f}ms"
        )
        status, ready = fetch_json("127.0.0.1", server.port, "/readyz")
        reasons = ready.get("reasons") or []
        print(
            f"Readiness: {ready.get('status')} (HTTP {status})"
            + (f" — {'; '.join(reasons)}" if reasons else "")
        )
    print("Fleet drained.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--demo",
        action="store_true",
        help="boot the fleet, run a few demo queries, drain and exit",
    )
    args = parser.parse_args()
    with tempfile.TemporaryDirectory() as scratch:
        server = build_server(
            args.workers, 0 if args.demo else args.port, Path(scratch)
        )
        if args.demo:
            demo(server)
        else:
            raise SystemExit(server.run())


if __name__ == "__main__":
    main()
