"""The feedback-based operating mode: learning from validated searches.

Simulates the demo's second phase: a user runs queries, validates the
configurations they meant, and QUEST's feedback HMM is trained on-line.
The example tracks answer quality as feedback accumulates and shows the
adaptive ``O_Cf`` ignorance schedule at work.

Run with::

    python examples/feedback_training.py
"""

from repro import FullAccessWrapper, Quest, QuestSettings, SimulatedUser
from repro.datasets import dblp
from repro.eval import evaluate, quest_engine
from repro.feedback import FeedbackTrainer


def main() -> None:
    db = dblp.generate(papers=250, seed=13)
    workload = dblp.workload(db, queries_per_kind=5, seed=17)
    train = list(workload)[: len(workload) // 2]
    test_queries = list(workload)[len(workload) // 2 :]
    print(f"{db}\n{len(train)} training queries, {len(test_queries)} test queries\n")

    wrapper = FullAccessWrapper(db)
    oracle = SimulatedUser(workload.gold_training_pairs(), noise=0.0)

    engine = Quest(wrapper, QuestSettings(use_feedback=True, use_apriori=True))
    trainer = FeedbackTrainer(engine.states)

    def measure(label: str) -> None:
        from repro.datasets.workload import Workload

        result = evaluate(
            quest_engine(engine),
            Workload("dblp-test", tuple(test_queries)),
            k=10,
        )
        print(
            f"  {label:28s} success@1={result.success_at(1):.2f} "
            f"mrr={result.mrr:.2f} O_Cf={trainer.suggested_ignorance():.2f}"
        )

    print("Quality on held-out queries as feedback accumulates:")
    measure("a-priori only (no feedback)")

    for count, query in enumerate(train, start=1):
        keywords = engine.keywords_of(query.text)
        proposals = engine.forward(keywords, k=10)
        oracle.teach(trainer, query.keywords, proposals)
        engine.set_feedback_model(trainer.model)
        engine.settings = engine.settings.updated(
            uncertainty_feedback=trainer.suggested_ignorance()
        )
        if count % 3 == 0 or count == len(train):
            measure(f"after {count} validations")

    print(
        "\nThe feedback mode sharpens the forward step on the query shapes\n"
        "users actually validate, while the Dempster-Shafer combination\n"
        "keeps the a-priori mode as a safety net for unseen shapes."
    )


if __name__ == "__main__":
    main()
