"""Quickstart: keyword search over a generated movie database.

Builds the IMDB-like demo database, wraps it, and answers a few keyword
queries, printing the ranked SQL explanations exactly as QUEST's demo GUI
lists them.

Run with::

    python examples/quickstart.py
"""

from repro import FullAccessWrapper, Quest
from repro.datasets import imdb
from repro.viz import render_ranking


def main() -> None:
    print("Generating the IMDB-like demo database ...")
    db = imdb.generate(movies=200, seed=7)
    print(f"  {db}\n")

    engine = Quest(FullAccessWrapper(db))
    print(f"Engine ready: {engine}\n")

    for query in (
        "kubrick movies",
        "scifi films kubrick",
        "cast odyssey",
    ):
        print(f'Keyword query: "{query}"')
        explanations = engine.search(query, k=3)
        if not explanations:
            print("  (no explanations)")
        else:
            print(render_ranking(explanations))
        print()


if __name__ == "__main__":
    main()
